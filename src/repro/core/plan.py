"""Compiled, read-optimized query plans for an HCL index.

The dict-backed :class:`~repro.core.labeling.Labeling` /
:class:`~repro.core.highway.Highway` pair is the *authoritative*
representation: transactional, journaled, cheap to mutate entry-by-entry
— exactly what ``UPGRADE-LMK`` / ``DOWNGRADE-LMK`` need.  It is also the
wrong shape for serving: every ``QUERY(s, t)`` hashes landmark ids in the
inner double loop, and every exact-distance refinement allocates two
fresh dicts plus an O(n) exclusion mask.  Hub-labeling practice separates
the mutable build-time structure from a frozen, cache-friendly serving
representation (Storandt 2022; BatchHL makes the same split for
batch-dynamic labelings), and :class:`QueryPlan` is that second
representation here:

* per-vertex label rows flattened into CSR-style parallel arrays
  (``array('q')`` offsets + ``array('q')`` landmark slots +
  ``array('d')`` distances, slot-sorted within each row);
* landmark ids interned into dense slots ``0..k-1`` (sorted id order);
* ``δ_H`` materialized as a dense ``k × k`` ``array('d')`` row-major
  matrix — an indexed load instead of two dict probes;
* the landmark exclusion mask prebuilt once;
* an epoch-stamped :class:`SearchWorkspace` whose preallocated
  distance/generation arrays replace the per-query dict pair of
  :func:`~repro.graphs.traversal.bounded_bidirectional_distance_masked`
  (a generation counter makes "reset" an integer bump, not an O(n)
  clear);
* a landmark-free compiled adjacency ``adj[v] = ((w, u), ...)`` over
  non-landmark neighbors, so the refinement search stops re-testing the
  mask on every edge scan (and never even sees the high-degree
  landmark hubs).

Every plan answer is **bitwise-equal** to the dict path, not just close:

* ``QUERY`` minimizes over the same candidate set with the same float
  association ``(d_i + δ) + d_j`` — ``min`` is order-independent over a
  fixed value set, so iterating rows in slot order instead of dict
  insertion order cannot change the result;
* the memoized per-endpoint row ``g_v[slot] = min_i (d_i + δ)`` is only
  built/used for the endpoint the serial loop scans *outer* (the smaller
  label, ties keeping the first argument), the same guarantee
  ``repro.core.batchquery`` documents: float addition is monotone, so
  ``min_j (min_i (d_i + δ)) + d_j`` equals the double-loop minimum
  bitwise;
* the workspace refinement kernel mirrors the dict kernel's control flow
  statement for statement (``gen[v] != epoch`` plays ``v not in dist``),
  and filtering landmarks out of the compiled adjacency only removes
  edge scans the dict kernel skips anyway.

Budgeted and observed queries dispatch to the *existing* twin kernels
(:func:`_bounded_bidirectional_masked_budgeted` /
``_obs``) with the plan's prebuilt mask, so ``DegradedResult`` semantics,
fault-injection hooks and search counters are inherited rather than
re-implemented.

Plans are immutable snapshots.  Validity is a revision-stamp compare:
``Labeling``, ``Highway`` and ``Graph`` each carry a ``_rev`` counter
bumped by every mutator (and by transaction rollback), and
:meth:`QueryPlan.matches` checks all three in O(1).  ``HCLIndex``
recompiles lazily — the authoritative dicts never wait on the plan.
"""

from __future__ import annotations

import itertools
import math
from array import array
from heapq import heappop, heappush
from typing import TYPE_CHECKING

from ..budget import Budget
from ..errors import DeadlineExceeded
from ..graphs.traversal import (
    _bounded_bidirectional_masked_budgeted,
    _bounded_bidirectional_masked_obs,
)
from ..obs import OBS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .index import HCLIndex

INF = math.inf

__all__ = ["QueryPlan", "SearchWorkspace"]

#: Build a memoized ``g_v`` row for an endpoint once it has appeared in
#: this many plan queries (the row costs ``|L(v)| · k`` float ops and
#: saves ``|L(s)| · |L(t)| - |L(t)|`` per reuse; Zipf-skewed workloads
#: break even after a handful of repeats).
ROW_HOT_THRESHOLD = 4

#: Memoized-row cache bound: on overflow both the rows and the frequency
#: counts are dropped, so a long-lived plan serving an adversarially wide
#: endpoint distribution stays O(cap · k) instead of O(n · k).
G_ROW_CACHE_CAP = 8192

#: Process-wide monotone plan ids.  A version never repeats within a
#: process, so ``(segment name, plan_version)`` is a sound memoization
#: key for per-worker shared-memory attachments: a recompiled plan gets
#: a fresh version (and a fresh segment) and can never be served from a
#: stale cached attachment.
_PLAN_VERSIONS = itertools.count(1)


class SearchWorkspace:
    """Preallocated state for the bounded bidirectional refinement.

    ``dist_f``/``dist_b`` are dense float arrays; an entry is only
    meaningful when the matching ``gen_f``/``gen_b`` cell equals the
    current ``epoch``, so "clearing" the workspace between queries is one
    integer increment.  (After ~2**63 queries the epoch would wrap; at a
    billion queries per second that is three centuries of uptime.)
    """

    __slots__ = ("n", "epoch", "dist_f", "dist_b", "gen_f", "gen_b")

    def __init__(self, n: int):
        self.n = n
        self.epoch = 0
        self.dist_f = [INF] * n
        self.dist_b = [INF] * n
        self.gen_f = [0] * n
        self.gen_b = [0] * n


def _refine_ws(adj, mask, ws, s, t, upper_bound):
    """Workspace twin of ``bounded_bidirectional_distance_masked``.

    Statement-for-statement mirror of the dict kernel in
    ``repro.graphs.traversal`` — same alternation rule, same skip tests,
    same meeting update — with three representation swaps: ``gen[v] ==
    epoch`` replaces ``v in dist``, the preallocated workspace replaces
    the two fresh dicts, and the landmark-filtered compiled adjacency
    replaces the per-edge ``excluded_mask[v]`` test (it skips exactly the
    edges the mask test skips).  Each swap preserves the relaxation
    order, so the returned float is bitwise-identical.
    """
    if s == t:
        return 0.0
    if mask[s] or mask[t]:
        return upper_bound

    ws.epoch = epoch = ws.epoch + 1
    dist_f = ws.dist_f
    dist_b = ws.dist_b
    gen_f = ws.gen_f
    gen_b = ws.gen_b
    dist_f[s] = 0.0
    gen_f[s] = epoch
    dist_b[t] = 0.0
    gen_b[t] = epoch
    heap_f = [(0.0, s)]
    heap_b = [(0.0, t)]
    best = upper_bound

    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        if heap_f[0][0] <= heap_b[0][0]:
            heap, dist, gen, odist, ogen = heap_f, dist_f, gen_f, dist_b, gen_b
        else:
            heap, dist, gen, odist, ogen = heap_b, dist_b, gen_b, dist_f, gen_f
        d, u = heappop(heap)
        if d > dist[u]:  # stale heap entry (u was pushed, so gen[u] == epoch)
            continue
        if d >= best:
            continue
        for w, v in adj[u]:
            nd = d + w
            in_other = ogen[v] == epoch
            if nd >= best and not in_other:
                continue
            if gen[v] != epoch:
                gen[v] = epoch
                dist[v] = nd
                heappush(heap, (nd, v))
            elif nd < dist[v]:
                dist[v] = nd
                heappush(heap, (nd, v))
            if in_other:
                total = dist[v] + odist[v]
                if total < best:
                    best = total
    return best


class QueryPlan:
    """A frozen, flat compilation of one ``HCLIndex`` snapshot.

    Build with :meth:`compile` (or ``HCLIndex.compile_plan()``).  The
    canonical state is the parallel-array form (picklable, shipped to
    pool workers); the per-vertex row tuples, highway row lists and
    compiled adjacency are interpreter-friendly views derived from it.
    """

    __slots__ = (
        # canonical arrays (pickled)
        "n",
        "k",
        "landmark_ids",
        "label_offsets",
        "label_slots",
        "label_dists",
        "hw",
        # derived read views
        "slot_of",
        "mask",
        "_rows",
        "_hwrows",
        # lazy serving state
        "_adj",
        "_ws",
        "_g_rows",
        "_g_freq",
        # optional accelerated backends (lazy, never pickled)
        "plan_version",
        "_vec",
        "_shm",
        # validity stamp (source objects + their revisions)
        "_graph",
        "_labeling",
        "_highway",
        "_stamp",
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def __init__(self, n, k, landmark_ids, offsets, slots, dists, hw):
        self.n = n
        self.k = k
        self.landmark_ids = landmark_ids
        self.label_offsets = offsets
        self.label_slots = slots
        self.label_dists = dists
        self.hw = hw
        self._graph = None
        self._labeling = None
        self._highway = None
        self._stamp = None
        self.plan_version = next(_PLAN_VERSIONS)
        self._vec = None
        self._shm = None
        self._build_views()

    def _build_views(self) -> None:
        """Derive the interpreter-friendly views from the canonical arrays.

        The hot loops read Python lists and tuples, not the arrays: an
        ``array('d')`` getitem boxes a fresh float object per access,
        which erases the layout win in CPython (measured), while list
        entries are already boxed once at compile time.
        """
        k = self.k
        self.slot_of = {r: i for i, r in enumerate(self.landmark_ids)}
        mask = [False] * self.n
        for r in self.landmark_ids:
            mask[r] = True
        self.mask = mask
        offsets = self.label_offsets
        slots = self.label_slots
        dists = self.label_dists
        rows = []
        for v in range(self.n):
            lo, hi = offsets[v], offsets[v + 1]
            rows.append(
                tuple((dists[i], slots[i]) for i in range(lo, hi))
            )
        self._rows = rows
        hwlist = self.hw.tolist()
        self._hwrows = [hwlist[i * k : (i + 1) * k] for i in range(k)]
        self._adj = None
        self._ws = None
        self._g_rows = {}
        self._g_freq = {}

    @classmethod
    def compile(cls, index: "HCLIndex") -> "QueryPlan":
        """Compile a plan from the index's current dict state."""
        if OBS.enabled:
            with OBS.span("plan.compile"):
                plan = cls._compile(index)
            OBS.registry.counter("plan.compiles").inc()
            OBS.registry.gauge("plan.landmarks").set(plan.k)
            return plan
        return cls._compile(index)

    @classmethod
    def compile_incremental(
        cls, prior: "QueryPlan", index: "HCLIndex", affected
    ) -> "QueryPlan | None":
        """Compile the next plan by patching ``prior``, or ``None``.

        ``affected`` is the set of label rows touched since ``prior`` was
        compiled (a transaction's undo-journal keys computes it for
        free).  Only those rows are rebuilt; every other per-vertex row
        tuple is shared *structurally* with the prior plan, so the cost
        is ``O(|affected| · row + k²)`` instead of ``O(n · row)``.

        Slot stability makes the sharing sound: surviving landmarks keep
        their ``prior`` slots, removed landmarks leave ``-1`` holes in
        ``landmark_ids`` (their ``δ_H`` rows turn to ``inf``), and added
        landmarks fill holes in sorted order before appending.  An
        unaffected row can never reference a hole — ``DOWNGRADE-LMK``
        rewrites every row that contained the removed landmark, so all
        such rows are in ``affected`` by construction.  Bitwise equality
        with a full compile holds because ``min`` over the fixed
        candidate set is order-independent: slot numbering only permutes
        the iteration order.

        Returns ``None`` (caller falls back to :meth:`compile`) when the
        patch would be unsound or not worth it: vertex count changed,
        ``prior`` tracks different source objects, or holes would exceed
        a quarter of the slot space.  Edge-weight revisions of the graph
        do *not* force a full compile — the batch-dynamic repair rewrites
        every label/highway row a weight change invalidates, so those
        rows arrive via ``affected``; only the cached adjacency is
        graph-derived, and :meth:`_patch` drops it when the graph moved.
        """
        labeling = index.labeling
        highway = index.highway
        graph = index.graph
        n = labeling.n
        if (
            prior._stamp is None
            or n != prior.n
            or labeling is not prior._labeling
            or highway is not prior._highway
            or graph is not prior._graph
        ):
            return None
        ids = list(prior.landmark_ids)
        old_set = {r for r in ids if r >= 0}
        new_set = highway.landmarks
        for i, r in enumerate(ids):
            if r >= 0 and r not in new_set:
                ids[i] = -1
        holes = [i for i, r in enumerate(ids) if r < 0]
        for r in sorted(new_set - old_set):
            if holes:
                ids[holes.pop(0)] = r
            else:
                ids.append(r)
        if ids and len(holes) * 4 > len(ids):
            return None
        if OBS.enabled:
            with OBS.span("plan.compile_incremental"):
                plan = cls._patch(prior, index, affected, ids)
            OBS.registry.counter("plan.incremental_compiles").inc()
            return plan
        return cls._patch(prior, index, affected, ids)

    @classmethod
    def _patch(cls, prior, index, affected, ids) -> "QueryPlan":
        labeling = index.labeling
        highway = index.highway
        graph = index.graph
        n = labeling.n
        k = len(ids)
        slot_of = {r: i for i, r in enumerate(ids) if r >= 0}

        rows = list(prior._rows)
        for v in affected:
            row = sorted(
                (slot_of[r], d) for r, d in labeling.row_items(v)
            )
            rows[v] = tuple((d, s) for s, d in row)

        hw = array("d", [INF]) * (k * k)
        hwrows = []
        for i, r in enumerate(ids):
            base = i * k
            if r >= 0:
                hrow = highway.row(r)
                for j, r2 in enumerate(ids):
                    if r2 >= 0:
                        hw[base + j] = hrow.get(r2, INF)
            hwrows.append(hw[base : base + k].tolist())

        mask = [False] * n
        for r in ids:
            if r >= 0:
                mask[r] = True

        plan = cls.__new__(cls)
        plan.n = n
        plan.k = k
        plan.landmark_ids = array("q", ids)
        # Canonical arrays are pickle-only state; derive lazily (see
        # __reduce__) instead of paying O(n · row) on every epoch.
        plan.label_offsets = None
        plan.label_slots = None
        plan.label_dists = None
        plan.hw = hw
        plan.slot_of = slot_of
        plan.mask = mask
        plan._rows = rows
        plan._hwrows = hwrows
        # The compiled adjacency depends on (graph, mask); reuse the prior
        # epoch's O(n + m) pass only when the landmark set *and* the
        # graph's edge weights are both unchanged.
        plan._adj = (
            prior._adj
            if mask == prior.mask
            and getattr(graph, "_rev", 0) == prior._stamp[2]
            else None
        )
        plan._ws = None
        plan._g_rows = {}
        plan._g_freq = {}
        plan.plan_version = next(_PLAN_VERSIONS)
        plan._vec = None
        plan._shm = None
        plan._graph = graph
        plan._labeling = labeling
        plan._highway = highway
        plan._stamp = (
            labeling._rev,
            highway._rev,
            getattr(graph, "_rev", 0),
            n,
        )
        return plan

    @classmethod
    def _compile(cls, index: "HCLIndex") -> "QueryPlan":
        labeling = index.labeling
        highway = index.highway
        graph = index.graph
        n = labeling.n
        landmark_ids = sorted(highway.landmarks)
        k = len(landmark_ids)
        slot_of = {r: i for i, r in enumerate(landmark_ids)}

        # "q", not "l": C long is 4 bytes on LLP64 (64-bit Windows),
        # where cumulative label offsets would wrap past 2^31 entries —
        # and the shared-memory layout assumes uniform 8-byte cells.
        offsets = array("q", [0])
        slots = array("q")
        dists = array("d")
        for v in range(n):
            row = sorted(
                (slot_of[r], d) for r, d in labeling.row_items(v)
            )
            for s, d in row:
                slots.append(s)
                dists.append(d)
            offsets.append(len(slots))

        hw = array("d", [INF]) * (k * k)
        for i, r in enumerate(landmark_ids):
            row = highway.row(r)
            base = i * k
            for j, r2 in enumerate(landmark_ids):
                hw[base + j] = row.get(r2, INF)

        plan = cls(n, k, array("q", landmark_ids), offsets, slots, dists, hw)
        plan._graph = graph
        plan._labeling = labeling
        plan._highway = highway
        plan._stamp = (
            labeling._rev,
            highway._rev,
            getattr(graph, "_rev", 0),
            n,
        )
        return plan

    # ------------------------------------------------------------------
    # Validity
    # ------------------------------------------------------------------
    def matches(self, index: "HCLIndex") -> bool:
        """Whether this plan still reflects ``index`` exactly (O(1)).

        Identity of the three source objects plus their revision
        counters; any mutator (or transaction rollback) bumps a counter,
        so a stale plan can never satisfy this.  Unpickled plans (pool
        workers) carry no stamp and never match — workers serve one
        frozen batch and are discarded.
        """
        labeling = index.labeling
        return (
            self._stamp is not None
            and labeling is self._labeling
            and index.highway is self._highway
            and index.graph is self._graph
            and self._stamp
            == (
                labeling._rev,
                index.highway._rev,
                getattr(index.graph, "_rev", 0),
                labeling.n,
            )
        )

    def attach_graph(self, graph) -> None:
        """Give an unpickled plan a graph to refine exact queries on.

        Pool workers receive the plan via its canonical arrays and the
        batch's CSR snapshot separately; the compiled adjacency is then
        derived from the snapshot on first use.
        """
        if self._graph is None:
            self._graph = graph

    # ------------------------------------------------------------------
    # Accelerated backends (vectorized kernel, shared-memory transport)
    # ------------------------------------------------------------------
    def vector_backend(self):
        """The plan's numpy min-plus backend, or ``None`` without numpy.

        Built lazily from :meth:`canonical_arrays` (zero-copy views over
        the same buffers) and cached; answers are bitwise-identical to
        :meth:`query` — see :mod:`repro.core.planvec` for the argument.
        """
        vec = self._vec
        if vec is None:
            from .planvec import VectorBackend, numpy_available

            if not numpy_available():
                return None
            vec = self._vec = VectorBackend(self.canonical_arrays())
        return vec

    def shared_buffers(self):
        """This plan's owned shared-memory segment, or ``None``.

        Created on first use (one copy of the canonical arrays into a
        named segment), cached thereafter; returns ``None`` when shared
        memory is unavailable or the segment has already been unlinked —
        callers fall back to pickling the canonical arrays.

        A cached segment that was **quarantined** (failed a CRC check,
        :mod:`repro.core.shm`) is unlinked and replaced with a fresh
        segment republished from the canonical arrays — those live in
        ordinary heap memory and are unaffected by segment corruption.
        """
        shm = self._shm
        if shm is not None and not shm.unlinked and shm.quarantined:
            from .shm import COUNTS

            try:
                shm.unlink()
            except Exception:  # pragma: no cover - teardown races
                pass
            self._shm = shm = None
            COUNTS["republished"] += 1
        if shm is None:
            from .shm import SharedPlanBuffers

            shm = SharedPlanBuffers.create(
                self.canonical_arrays(), self.plan_version
            )
            if shm is None:
                return None
            self._shm = shm
        elif shm.unlinked:
            return None
        return shm

    def release_shared(self) -> None:
        """Unlink the owned segment, if any (idempotent, never raises).

        Called by :meth:`repro.core.epoch.PlanRegistry._drop_locked` when
        the owning epoch retires and drains; attached workers keep their
        existing mappings until they detach.
        """
        shm = self._shm
        if shm is not None:
            try:
                shm.unlink()
            except Exception:  # pragma: no cover - teardown races
                pass

    # ------------------------------------------------------------------
    # Pickling (canonical arrays only; views are rebuilt on arrival)
    # ------------------------------------------------------------------
    def __reduce__(self):
        return (QueryPlan, self.canonical_arrays())

    def canonical_arrays(self):
        """The plan's canonical 7-tuple ``(n, k, ids, offsets, slots, dists, hw)``.

        Dense, hole-free, slot-sorted — the exact wire form
        :meth:`__reduce__` pickles and :class:`QueryPlan`'s constructor
        accepts.  The sharded serving tier slices these arrays per shard
        (:func:`repro.shard.partition.partition_plan`); incremental plans
        are densified first via :meth:`_canonical_args`.
        """
        if self.label_offsets is None:
            return self._canonical_args()
        return (
            self.n,
            self.k,
            self.landmark_ids,
            self.label_offsets,
            self.label_slots,
            self.label_dists,
            self.hw,
        )

    def _canonical_args(self):
        """Densify an incrementally-patched plan for pickling.

        Incremental plans (see :meth:`compile_incremental`) keep ``-1``
        holes in ``landmark_ids`` and no flat label arrays; pickling
        compacts to the same canonical form :meth:`compile` produces —
        sorted dense landmark ids, slot-sorted CSR arrays — so the wire
        format is identical regardless of how the plan was built.
        """
        old_slot = self.slot_of
        ids = sorted(old_slot)
        k = len(ids)
        remap = [-1] * self.k
        for i, r in enumerate(ids):
            remap[old_slot[r]] = i
        offsets = array("q", [0])  # int64 everywhere; see _compile
        slots = array("q")
        dists = array("d")
        for row in self._rows:
            for s, d in sorted((remap[s], d) for d, s in row):
                slots.append(s)
                dists.append(d)
            offsets.append(len(slots))
        hw_old = self.hw
        k_old = self.k
        hw = array("d", [INF]) * (k * k)
        for i, r in enumerate(ids):
            oi = old_slot[r]
            for j, r2 in enumerate(ids):
                hw[i * k + j] = hw_old[oi * k_old + old_slot[r2]]
        return (self.n, k, array("q", ids), offsets, slots, dists, hw)

    # ------------------------------------------------------------------
    # Constrained QUERY
    # ------------------------------------------------------------------
    def query(self, s: int, t: int, budget: Budget | None = None) -> float:
        """``QUERY(s, t)`` — bitwise-equal to :meth:`HCLIndex.query`."""
        rows = self._rows
        rs = rows[s]
        rt = rows[t]
        if not rs or not rt:
            return INF
        if budget is not None:
            budget.charge(min(len(rs), len(rt)))
        if len(rs) > len(rt):
            outer_v, outer, inner = t, rt, rs
        else:
            outer_v, outer, inner = s, rs, rt
        g = self._g_rows.get(outer_v)
        if g is None:
            freq = self._g_freq
            count = freq.get(outer_v, 0) + 1
            if count >= ROW_HOT_THRESHOLD:
                g = self._build_g_row(outer_v)
            else:
                freq[outer_v] = count
        if g is not None:
            best = INF
            for dj, sj in inner:
                d = g[sj] + dj
                if d < best:
                    best = d
            return best
        hwrows = self._hwrows
        best = INF
        for di, si in outer:
            hwrow = hwrows[si]
            for dj, sj in inner:
                d = di + hwrow[sj] + dj
                if d < best:
                    best = d
        return best

    def _build_g_row(self, v: int) -> list[float]:
        """``g_v[slot] = min_i d_i + δ_H(r_i, slot)`` over ``L(v)``."""
        g_rows = self._g_rows
        if len(g_rows) >= G_ROW_CACHE_CAP:
            g_rows.clear()
            self._g_freq.clear()
        k = self.k
        g = [INF] * k
        hwrows = self._hwrows
        for di, si in self._rows[v]:
            hwrow = hwrows[si]
            for j in range(k):
                d = di + hwrow[j]
                if d < g[j]:
                    g[j] = d
        g_rows[v] = g
        return g

    def note_endpoints(self, keys) -> None:
        """Pre-seed row-heat counts with a batch's endpoint multiplicities."""
        freq = self._g_freq
        if len(freq) >= 4 * G_ROW_CACHE_CAP:
            self._g_rows.clear()
            freq.clear()
        for s, t in keys:
            freq[s] = freq.get(s, 0) + 1
            freq[t] = freq.get(t, 0) + 1

    def query_from_landmark(self, r: int, u: int) -> float:
        """Mirror of :meth:`HCLIndex.query_from_landmark` (``r ∈ R``)."""
        hwrow = self._hwrows[self.slot_of[r]]
        best = INF
        for dj, sj in self._rows[u]:
            d = hwrow[sj] + dj
            if d < best:
                best = d
        return best

    # ------------------------------------------------------------------
    # Exact distance
    # ------------------------------------------------------------------
    def distance(
        self,
        s: int,
        t: int,
        budget: Budget | None = None,
        strict: bool = False,
        _what: str = "distance",
        ub: float | None = None,
        backend: str = "flat",
    ) -> float:
        """Exact ``d(s, t)`` — bitwise-equal to :meth:`HCLIndex.distance`.

        Same branch structure; with a budget (or tracing enabled) the
        refinement dispatches to the existing budgeted/observed dict
        kernels with the plan's prebuilt mask, so degraded-answer
        semantics and counters are exactly the dict path's.

        ``ub`` short-circuits the constrained upper bound with a value
        the caller already computed (the vectorized batch solver bounds
        whole batches in one reduction); ``backend="vector"`` computes
        it through :meth:`vector_backend` instead of the interpreted
        loop.  Either way the bound is bitwise-equal to :meth:`query`,
        so the refinement — and therefore the answer — is unchanged.
        """
        if s == t:
            return 0.0
        mask = self.mask
        s_is_lmk = mask[s]
        t_is_lmk = mask[t]
        if s_is_lmk and t_is_lmk:
            slot_of = self.slot_of
            return self._hwrows[slot_of[s]][slot_of[t]]
        if s_is_lmk:
            return self.query_from_landmark(s, t)
        if t_is_lmk:
            return self.query_from_landmark(t, s)
        if ub is None:
            vec = self.vector_backend() if backend == "vector" else None
            if vec is not None:
                if budget is not None:
                    # Mirror query()'s label-scan charge exactly: the
                    # budget trace must not depend on the backend.
                    rows = self._rows
                    ls, lt = len(rows[s]), len(rows[t])
                    if ls and lt:
                        budget.charge(min(ls, lt))
                ub = vec.query(s, t)
            else:
                ub = self.query(s, t, budget)
        if budget is None:
            if OBS.enabled:
                return _bounded_bidirectional_masked_obs(
                    self._graph, s, t, ub, mask
                )
            return self.refine(s, t, ub)
        if budget.check():
            if strict:
                raise DeadlineExceeded(
                    f"{_what}({s}, {t}) exceeded its budget before "
                    f"refinement ({budget.reason})"
                )
            return budget.degrade(ub)
        best = _bounded_bidirectional_masked_budgeted(
            self._graph, s, t, ub, mask, budget
        )
        if budget.exceeded:
            if strict:
                raise DeadlineExceeded(
                    f"{_what}({s}, {t}) exceeded its budget mid-refinement "
                    f"({budget.reason})"
                )
            return budget.degrade(best)
        return best

    def refine(self, s: int, t: int, upper_bound: float) -> float:
        """Bounded bidirectional refinement on the compiled adjacency."""
        adj = self._adj
        if adj is None:
            adj = self._compile_adjacency()
        ws = self._ws
        if ws is None:
            ws = self._ws = SearchWorkspace(self.n)
        return _refine_ws(adj, self.mask, ws, s, t, upper_bound)

    def _compile_adjacency(self):
        """Landmark-free ``adj[v] = ((w, u), ...)``, lazily on first use.

        Only exact queries pay for this O(n + m) pass; constrained-only
        plans never touch the graph.  Landmark rows compile to empty
        tuples — the kernel rejects landmark endpoints before expanding.
        """
        graph = self._graph
        mask = self.mask
        neighbors = graph.neighbors
        if OBS.enabled:
            with OBS.span("plan.compile_adjacency"):
                adj = [
                    ()
                    if mask[v]
                    else tuple(
                        (w, u) for u, w in neighbors(v) if not mask[u]
                    )
                    for v in range(self.n)
                ]
        else:
            adj = [
                ()
                if mask[v]
                else tuple((w, u) for u, w in neighbors(v) if not mask[u])
                for v in range(self.n)
            ]
        self._adj = adj
        return adj

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total_entries(self) -> int:
        """Number of flattened label entries."""
        if self.label_slots is None:  # incremental plan: arrays are lazy
            return sum(len(row) for row in self._rows)
        return len(self.label_slots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryPlan(n={self.n}, |R|={self.k}, "
            f"entries={self.total_entries})"
        )
