"""The landmark labeling ``L = {L(v)}`` of an HCL index.

Each label ``L(v)`` is a mapping ``landmark -> distance`` holding the
entries ``(r, d(r, v))`` of the paper; dict storage gives O(1) lookup of a
specific landmark's entry, which both ``QUERY`` and the dynamic algorithms
exploit heavily.  The canonical index keeps at most one entry per landmark
per vertex, matching the ``|L(v)| <= |R|`` assumption of Theorem 3.4.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Iterable, ItemsView, Mapping

from ..errors import LandmarkError, VertexError

__all__ = ["Labeling"]


class Labeling:
    """Per-vertex landmark labels for a graph on ``n`` vertices.

    When a :class:`~repro.core.transaction.IndexTransaction` is active the
    ``_journal`` attribute points at its undo journal and every mutator
    records the touched label row (copy-on-write, first touch only) before
    changing it, so a failed mutation can be rolled back exactly.
    """

    __slots__ = ("_labels", "_journal", "_rev")

    def __init__(self, n: int):
        if n < 0:
            raise VertexError(f"number of vertices must be >= 0, got {n}")
        self._labels: list[dict[int, float]] = [{} for _ in range(n)]
        self._journal = None
        # Revision counter: bumped by every mutator (and by transaction
        # rollback, which restores rows directly) so compiled read views
        # (repro.core.plan.QueryPlan) can check validity in O(1).
        self._rev = 0

    @property
    def n(self) -> int:
        """Number of vertices the labeling spans."""
        return len(self._labels)

    def label(self, v: int) -> Mapping[int, float]:
        """The label ``L(v)`` as a read-only ``landmark -> distance`` view.

        The view is live (it reflects later mutations) but cannot be
        written through — use the mutator methods below for changes.  It
        compares equal to a plain dict with the same entries.
        """
        return MappingProxyType(self._labels[v])

    def row_items(self, v: int) -> ItemsView[int, float]:
        """``L(v).items()`` without the read-only-proxy allocation.

        The items view supports ``len()``, truthiness and iteration — all
        the hot query loops need — and is what ``QUERY`` and the batch
        solver use to scan labels without handing out the mutable dict.
        """
        return self._labels[v].items()

    def add_vertex(self) -> int:
        """Grow the labeling by one (empty-label) vertex; returns its id."""
        if self._journal is not None:
            self._journal.record_label_growth(self)
        self._labels.append({})
        self._rev += 1
        return len(self._labels) - 1

    def add_entry(self, v: int, r: int, d: float) -> None:
        """Insert (or overwrite) entry ``(r, d)`` in ``L(v)``."""
        if self._journal is not None:
            self._journal.record_label(self, v)
        self._labels[v][r] = d
        self._rev += 1

    def remove_entry(self, v: int, r: int) -> bool:
        """Delete the entry for landmark ``r`` from ``L(v)`` if present."""
        if self._journal is not None:
            self._journal.record_label(self, v)
        self._rev += 1
        return self._labels[v].pop(r, None) is not None

    def clear_vertex(self, v: int) -> None:
        """Remove every entry of ``L(v)`` (paper: ``L(v) <- ∅``)."""
        if self._journal is not None:
            self._journal.record_label(self, v)
        self._labels[v].clear()
        self._rev += 1

    def merge_entries(
        self, r: int, entries: Iterable[tuple[int, float]]
    ) -> int:
        """Bulk-insert the entries ``(v, d)`` of landmark ``r``.

        This is the merge primitive of the parallel build: each worker
        returns one landmark's entry list and the coordinator folds them in.
        A conflicting pre-existing entry (same ``(v, r)`` key, different
        distance) raises :class:`~repro.errors.LandmarkError` — partial
        labelings produced from the same snapshot are disjoint per landmark,
        so a conflict always means a merge-ordering bug.  Returns the number
        of entries inserted.
        """
        labels = self._labels
        journal = self._journal
        count = 0
        for v, d in entries:
            if not 0 <= v < len(labels):
                raise VertexError(f"vertex {v} out of range [0, {len(labels)})")
            old = labels[v].get(r)
            if old is not None and old != d:
                raise LandmarkError(
                    f"conflicting entries for ({v}, {r}): {old} vs {d}"
                )
            if journal is not None:
                journal.record_label(self, v)
            labels[v][r] = d
            count += 1
        self._rev += 1
        return count

    def merge(self, other: "Labeling") -> int:
        """Union another (vertex-aligned) partial labeling into this one.

        Raises on vertex-count mismatch or conflicting entries, mirroring
        :meth:`merge_entries`.  Returns the number of entries merged.
        """
        if other.n != self.n:
            raise VertexError(
                f"cannot merge labeling over {other.n} vertices into {self.n}"
            )
        count = 0
        for v, label in enumerate(other._labels):
            if label:
                count += self.merge_entries_for_vertex(v, label)
        return count

    def merge_entries_for_vertex(
        self, v: int, entries: dict[int, float]
    ) -> int:
        """Merge a ``landmark -> distance`` mapping into ``L(v)``."""
        label = self._labels[v]
        for r, d in entries.items():
            old = label.get(r)
            if old is not None and old != d:
                raise LandmarkError(
                    f"conflicting entries for ({v}, {r}): {old} vs {d}"
                )
        if self._journal is not None:
            self._journal.record_label(self, v)
        label.update(entries)
        self._rev += 1
        return len(entries)

    def entry(self, v: int, r: int) -> float | None:
        """Distance of entry ``(r, ·) ∈ L(v)``, or ``None`` if absent."""
        return self._labels[v].get(r)

    def covers(self, r: int, v: int) -> bool:
        """Whether landmark ``r`` covers vertex ``v`` (entry present)."""
        return r in self._labels[v]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def total_entries(self) -> int:
        """Total number of label entries (the index-size measure)."""
        return sum(len(lbl) for lbl in self._labels)

    def average_label_size(self) -> float:
        """Mean entries per vertex."""
        return self.total_entries() / self.n if self.n else 0.0

    def max_label_size(self) -> int:
        """Largest label."""
        return max((len(lbl) for lbl in self._labels), default=0)

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def copy(self) -> "Labeling":
        """Deep copy."""
        out = Labeling(0)
        out._labels = [dict(lbl) for lbl in self._labels]
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Labeling):
            return NotImplemented
        return self._labels == other._labels

    def __hash__(self) -> int:  # mutable; identity hash
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Labeling(n={self.n}, entries={self.total_entries()})"
