"""The landmark labeling ``L = {L(v)}`` of an HCL index.

Each label ``L(v)`` is a mapping ``landmark -> distance`` holding the
entries ``(r, d(r, v))`` of the paper; dict storage gives O(1) lookup of a
specific landmark's entry, which both ``QUERY`` and the dynamic algorithms
exploit heavily.  The canonical index keeps at most one entry per landmark
per vertex, matching the ``|L(v)| <= |R|`` assumption of Theorem 3.4.
"""

from __future__ import annotations

from ..errors import VertexError

__all__ = ["Labeling"]


class Labeling:
    """Per-vertex landmark labels for a graph on ``n`` vertices."""

    __slots__ = ("_labels",)

    def __init__(self, n: int):
        if n < 0:
            raise VertexError(f"number of vertices must be >= 0, got {n}")
        self._labels: list[dict[int, float]] = [{} for _ in range(n)]

    @property
    def n(self) -> int:
        """Number of vertices the labeling spans."""
        return len(self._labels)

    def label(self, v: int) -> dict[int, float]:
        """The label ``L(v)`` as a ``landmark -> distance`` dict.

        This is the internal mapping; treat it as read-only and use the
        mutator methods below for changes.
        """
        return self._labels[v]

    def add_vertex(self) -> int:
        """Grow the labeling by one (empty-label) vertex; returns its id."""
        self._labels.append({})
        return len(self._labels) - 1

    def add_entry(self, v: int, r: int, d: float) -> None:
        """Insert (or overwrite) entry ``(r, d)`` in ``L(v)``."""
        self._labels[v][r] = d

    def remove_entry(self, v: int, r: int) -> bool:
        """Delete the entry for landmark ``r`` from ``L(v)`` if present."""
        return self._labels[v].pop(r, None) is not None

    def clear_vertex(self, v: int) -> None:
        """Remove every entry of ``L(v)`` (paper: ``L(v) <- ∅``)."""
        self._labels[v].clear()

    def entry(self, v: int, r: int) -> float | None:
        """Distance of entry ``(r, ·) ∈ L(v)``, or ``None`` if absent."""
        return self._labels[v].get(r)

    def covers(self, r: int, v: int) -> bool:
        """Whether landmark ``r`` covers vertex ``v`` (entry present)."""
        return r in self._labels[v]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def total_entries(self) -> int:
        """Total number of label entries (the index-size measure)."""
        return sum(len(lbl) for lbl in self._labels)

    def average_label_size(self) -> float:
        """Mean entries per vertex."""
        return self.total_entries() / self.n if self.n else 0.0

    def max_label_size(self) -> int:
        """Largest label."""
        return max((len(lbl) for lbl in self._labels), default=0)

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def copy(self) -> "Labeling":
        """Deep copy."""
        out = Labeling(0)
        out._labels = [dict(lbl) for lbl in self._labels]
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Labeling):
            return NotImplemented
        return self._labels == other._labels

    def __hash__(self) -> int:  # mutable; identity hash
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Labeling(n={self.n}, entries={self.total_entries()})"
