"""Multi-category landmark sets (paper future-work item iv).

The paper's final future-work item proposes landmark sets with *categories*
("different types of important vertices"), enabling generalized
shortest-path queries: find the cheapest ``s -> t`` route that visits at
least one landmark of each requested category, in the requested order —
e.g. *warehouse, then inspection point, then fuel stop*.

The HCL machinery makes this surprisingly direct.  Maintain one dynamic
index over the **union** of all category members.  Then, for categories
``C_1, ..., C_k`` in order:

* ``d(s, r_1)`` for each ``r_1 in C_1`` is exact from ``L(s)`` + ``δ_H``
  (``min_i d_i + δ_H(r_i, r_1)`` — the landmark-endpoint query);
* every middle leg ``d(r_j, r_{j+1})`` is a single exact ``δ_H`` lookup
  (both endpoints are landmarks);
* ``d(r_k, t)`` mirrors the first leg.

so the whole query is a ``k``-stage dynamic program over ``δ_H`` with no
graph traversal.  Category membership churn maps to ``UPGRADE-LMK`` /
``DOWNGRADE-LMK`` on the union (a vertex is only demoted when it leaves its
*last* category).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from ..errors import DatasetError, LandmarkError
from ..graphs.graph import Graph
from .dynhcl import DynamicHCL

INF = math.inf

__all__ = ["MultiCategoryHCL"]


class MultiCategoryHCL:
    """Dynamic HCL index over categorized landmarks.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> g = Graph(6)
    >>> for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]:
    ...     g.add_edge(u, v, 1.0)
    >>> mc = MultiCategoryHCL(g, {"fuel": [2], "inspection": [4]})
    >>> mc.ordered_category_distance(0, 5, ["fuel", "inspection"])
    5.0
    >>> mc.ordered_category_distance(0, 5, ["inspection", "fuel"])
    9.0
    """

    def __init__(self, graph: Graph, categories: Mapping[str, Iterable[int]]):
        self._members: dict[str, set[int]] = {}
        union: set[int] = set()
        for name, members in categories.items():
            member_set = set(members)
            for v in member_set:
                if not 0 <= v < graph.n:
                    raise LandmarkError(f"vertex {v} out of range [0, {graph.n})")
            self._members[name] = member_set
            union |= member_set
        self._dyn = DynamicHCL.build(graph, sorted(union))

    # ------------------------------------------------------------------
    # Category management
    # ------------------------------------------------------------------
    @property
    def categories(self) -> dict[str, set[int]]:
        """Current category membership (fresh copies)."""
        return {name: set(members) for name, members in self._members.items()}

    @property
    def landmarks(self) -> set[int]:
        """The union landmark set backing the index."""
        return self._dyn.landmarks

    def _category(self, name: str) -> set[int]:
        members = self._members.get(name)
        if members is None:
            raise DatasetError(
                f"unknown category {name!r}; have {sorted(self._members)}"
            )
        return members

    def add_category(self, name: str, members: Iterable[int] = ()) -> None:
        """Create a new (possibly empty) category."""
        if name in self._members:
            raise DatasetError(f"category {name!r} already exists")
        self._members[name] = set()
        for v in members:
            self.add_member(name, v)

    def add_member(self, name: str, v: int) -> None:
        """Add ``v`` to a category; promotes it if newly a landmark."""
        members = self._category(name)
        if v in members:
            raise LandmarkError(f"vertex {v} is already in category {name!r}")
        if v not in self._dyn.landmarks:
            self._dyn.add_landmark(v)  # UPGRADE-LMK
        members.add(v)

    def remove_member(self, name: str, v: int) -> None:
        """Drop ``v`` from a category; demotes it when no category remains."""
        members = self._category(name)
        if v not in members:
            raise LandmarkError(f"vertex {v} is not in category {name!r}")
        members.discard(v)
        if not any(v in other for other in self._members.values()):
            self._dyn.remove_landmark(v)  # DOWNGRADE-LMK

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _to_landmarks(self, s: int, targets: set[int]) -> dict[int, float]:
        """Exact ``d(s, r)`` for every ``r`` in ``targets`` (landmarks)."""
        index = self._dyn.index
        if s in index.highway:
            row = index.highway.row(s)
            return {r: row.get(r, INF) if r != s else 0.0 for r in targets}
        label = index.labeling.label(s)
        highway = index.highway
        out: dict[int, float] = {}
        for r in targets:
            hrow = highway.row(r)
            best = INF
            for ri, di in label.items():
                d = di + hrow.get(ri, INF)
                if d < best:
                    best = d
            out[r] = best
        return out

    def ordered_category_distance(
        self, s: int, t: int, order: Sequence[str]
    ) -> float:
        """Cheapest ``s -> t`` route visiting one member per category, in order.

        Runs the ``δ_H`` dynamic program described in the module docstring;
        ``inf`` when any category is empty or unreachable.
        """
        if not order:
            return self._dyn.distance(s, t)
        stages = [self._category(name) for name in order]
        if any(not members for members in stages):
            return INF

        highway = self._dyn.index.highway
        # stage 0: exact distances from s into the first category
        costs = self._to_landmarks(s, stages[0])
        # middle stages: one δ_H lookup per member pair
        for nxt in stages[1:]:
            new_costs: dict[int, float] = {}
            for r2 in nxt:
                row = highway.row(r2)
                best = INF
                for r1, c in costs.items():
                    d = c + row.get(r1, INF)
                    if d < best:
                        best = d
                new_costs[r2] = best
            costs = new_costs
        # final leg: exact distances from the last category to t
        finish = self._to_landmarks(t, stages[-1])
        return min(
            (c + finish[r] for r, c in costs.items()),
            default=INF,
        )

    def any_category_distance(self, s: int, t: int, name: str) -> float:
        """Cheapest route through at least one member of one category.

        The beer-distance generalization: with ``name``'s members as the
        constraint set this is a single-stage instance of the DP.
        """
        return self.ordered_category_distance(s, t, [name])

    def distance(self, s: int, t: int) -> float:
        """Unconstrained exact distance."""
        return self._dyn.distance(s, t)
