"""Epoch-based MVCC snapshots of the compiled query plan.

The revision-stamp scheme of :mod:`repro.core.plan` keeps one plan and
asks, on *every* query, "is it still current?" — three counter compares
per call, and any mutation invalidates the plan wholesale, so queries and
landmark reconfigurations cannot truly overlap.  This module promotes the
plan to a chain of immutable, epoch-stamped snapshots with single-writer
MVCC semantics:

* :class:`PlanEpoch` wraps one frozen :class:`~repro.core.plan.QueryPlan`
  with a monotonically increasing ``epoch_id``, the index version it was
  compiled at, and a reader refcount.
* :class:`PlanRegistry` owns the chain.  Readers pin the head with
  :meth:`PlanRegistry.acquire` (a context manager) and then serve
  **without any revalidation** — a pinned epoch is immutable, so the
  per-query stamp compare disappears.  Pinning itself is one refcount
  increment under a mutex; the query loop takes no locks.
* A committing :class:`~repro.core.transaction.IndexTransaction` notifies
  the registry, which recompiles the next plan — *incrementally* when the
  head epoch matches the transaction's base version: only label rows in
  the transaction's touched set (the undo journal already computed it)
  are rebuilt, every other row is shared structurally with the prior
  epoch — and atomically swaps the head.  Readers that pinned epoch *N*
  keep serving *N*, bitwise-stable, while *N+1* is compiled and
  published.
* A replaced epoch is *retired*; it leaves the live set the moment its
  last reader releases, so the chain cannot grow without bound.

Concurrency contract: **one writer, many readers**.  All mutations go
through the same thread (or are externally serialized); readers may run
on any number of threads.  Readers never touch the authoritative dicts —
they only read frozen plans — so the writer may mutate and recompile
freely while queries are in flight.

Recompilation modes (``PlanRegistry(recompile=...)``):

``"sync"`` (default)
    The committing thread recompiles and publishes before the commit
    returns.  Readers on other threads keep serving their pinned epochs
    throughout; only the writer waits.
``"thread"``
    The commit spawns a background thread; the head swaps when it
    finishes.  A later rollback (or a conflicting commit) cancels the
    in-flight recompile — a cancelled recompile never publishes.
``"deferred"``
    The commit only records what changed; :meth:`PlanRegistry.pump`
    performs the recompile.  This is the mode the deterministic
    interleaving tests script, and what an event-loop deployment would
    drive from its idle callback.

Rollback safety: :meth:`repro.core.transaction.UndoJournal.rollback`
calls :meth:`PlanRegistry.invalidate_pending`, so a transaction that
rolls back can never publish an epoch containing its writes — neither
through its own pending recompile nor through an earlier one that might
have snapshotted the dirty state.  As defense in depth, every recompile
re-checks the index version under the registry lock immediately before
publishing and discards itself on any mismatch.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from ..obs import OBS
from .plan import QueryPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .index import HCLIndex

__all__ = ["PlanEpoch", "PlanRegistry"]

#: Test seam: when set, called as ``_PUBLISH_HOOK(registry, task)`` after a
#: recompile produced its plan but *before* the publish lock is taken —
#: the exact window where a cancellation must win.  Production never sets
#: it (mirrors ``upgrade._PHASE_HOOK``).
_PUBLISH_HOOK = None


class _RecompileTask:
    """One scheduled recompile: what changed, from which base version."""

    __slots__ = ("affected", "base_version", "grew", "cancelled", "started")

    def __init__(self, affected, base_version, grew):
        self.affected = affected  # set[int] of touched label rows, or None
        self.base_version = base_version  # index version at transaction start
        self.grew = grew  # labeling gained vertices (forces full compile)
        self.cancelled = False
        self.started = False

    def merge(self, affected, grew) -> None:
        """Fold a later commit into this not-yet-started task.

        The base version stays the *older* transaction's: every write
        since the head epoch is covered by the union of the touched sets,
        which is exactly what incremental recompilation needs.
        """
        if affected is None or self.affected is None:
            self.affected = None
        else:
            self.affected |= affected
        self.grew = self.grew or grew


class PlanEpoch:
    """One immutable, refcounted snapshot in a :class:`PlanRegistry` chain.

    ``plan`` never changes after construction; ``version`` is the
    ``(labeling_rev, highway_rev, graph_rev, n)`` stamp of the index
    state it compiled from.  Use as a context manager (the registry's
    :meth:`~PlanRegistry.acquire` returns it already pinned)::

        with registry.acquire() as epoch:
            epoch.plan.query(s, t)      # no revalidation, ever
    """

    __slots__ = ("plan", "epoch_id", "version", "_registry", "_readers", "_retired")

    def __init__(self, plan: QueryPlan, epoch_id: int, version, registry):
        self.plan = plan
        self.epoch_id = epoch_id
        self.version = version
        self._registry = registry
        self._readers = 0
        self._retired = False

    @property
    def readers(self) -> int:
        """Current number of pins (diagnostics/tests)."""
        return self._readers

    @property
    def retired(self) -> bool:
        """Whether a newer epoch replaced this one as the head."""
        return self._retired

    def acquire(self) -> "PlanEpoch":
        """Add one pin.  Prefer :meth:`PlanRegistry.acquire` for the head."""
        with self._registry._lock:
            self._readers += 1
        return self

    def release(self) -> None:
        """Drop one pin; a retired epoch drains when its last pin goes."""
        registry = self._registry
        with registry._lock:
            if self._readers <= 0:
                raise RuntimeError(
                    f"epoch {self.epoch_id} released more times than acquired"
                )
            self._readers -= 1
            if self._retired and self._readers == 0:
                registry._drop_locked(self)

    def __enter__(self) -> "PlanEpoch":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "retired" if self._retired else "head"
        return (
            f"PlanEpoch(id={self.epoch_id}, readers={self._readers}, {state})"
        )


class PlanRegistry:
    """Single-writer MVCC registry of compiled-plan epochs for one index.

    Create through :meth:`repro.core.index.HCLIndex.epoch_registry` so the
    index and registry stay one-to-one.  Thread safety: ``acquire`` /
    ``release`` / ``head_plan`` may be called from any thread; mutations
    (and therefore ``on_commit`` / ``pump`` / ``refresh``) must come from
    a single writer thread.
    """

    def __init__(self, index: "HCLIndex", recompile: str = "sync"):
        if recompile not in ("sync", "thread", "deferred"):
            raise ValueError(
                f'recompile must be "sync", "thread" or "deferred", '
                f"got {recompile!r}"
            )
        self._index = index
        self.recompile_mode = recompile
        self._lock = threading.Lock()
        self._head: PlanEpoch | None = None
        self._live: dict[int, PlanEpoch] = {}
        self._next_id = 1
        self._pending: _RecompileTask | None = None
        self._pending_thread: threading.Thread | None = None
        # Totals surfaced through service health()/metrics().
        self.publishes = 0
        self.incremental_publishes = 0
        self.cancelled_recompiles = 0
        self.last_recompile_seconds = 0.0
        self._listeners: list = []

    # ------------------------------------------------------------------
    # Publish listeners
    # ------------------------------------------------------------------
    def add_publish_listener(self, listener) -> None:
        """Register ``listener(epoch)`` to run after each head swap.

        Listeners fire *outside* the registry lock, on whichever thread
        published (the writer in ``"sync"``/``"deferred"`` modes, the
        recompile thread in ``"thread"`` mode, or a reader for the very
        first epoch).  The sharded serving tier uses this to learn that
        its shard slices are stale; listeners must not call back into
        registry methods that publish.
        """
        with self._lock:
            self._listeners.append(listener)

    def remove_publish_listener(self, listener) -> None:
        """Unregister a listener registered via :meth:`add_publish_listener`."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def _notify_publish(self, epoch: "PlanEpoch") -> None:
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            listener(epoch)

    # ------------------------------------------------------------------
    # Version stamps
    # ------------------------------------------------------------------
    def _version(self):
        index = self._index
        return (
            index.labeling._rev,
            index.highway._rev,
            getattr(index.graph, "_rev", 0),
            index.labeling.n,
        )

    @property
    def epoch_id(self) -> int:
        """Id of the current head epoch (0 before the first compile)."""
        head = self._head
        return head.epoch_id if head is not None else 0

    @property
    def live_epochs(self) -> int:
        """Epochs still alive: the head plus retired-but-pinned ones."""
        with self._lock:
            return len(self._live)

    @property
    def head(self) -> PlanEpoch | None:
        """The current head epoch (unpinned; may retire under you)."""
        return self._head

    @property
    def pending(self) -> bool:
        """Whether a scheduled recompile has not yet published."""
        return self._pending is not None

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    def acquire(self) -> PlanEpoch:
        """Pin and return the current head epoch (compiling the first).

        The returned epoch is a context manager; leaving the ``with``
        block releases the pin.  The pinned plan is immutable — answers
        stay bitwise-stable however many mutations commit concurrently.
        """
        while True:
            with self._lock:
                head = self._head
                if head is not None:
                    head._readers += 1
                    return head
            # First pin pays the initial compile — outside the lock, so
            # concurrent readers of an already-compiled head never wait.
            self._compile_initial()

    def head_plan(self) -> QueryPlan:
        """The head epoch's plan, unpinned (compiles the first epoch).

        Safe for a single borrowed use on CPython — the plan object stays
        alive through the reference — but does not delay retirement
        accounting; long-lived uses should pin via :meth:`acquire`.
        """
        head = self._head
        if head is None:
            self._compile_initial()
            head = self._head
        return head.plan

    def _compile_initial(self) -> None:
        start = time.perf_counter()
        version = self._version()
        plan = QueryPlan.compile(self._index)
        seconds = time.perf_counter() - start
        published = None
        with self._lock:
            if self._head is None and version == self._version():
                self._publish_locked(plan, version, seconds, incremental=False)
                published = self._head
            # else: lost a benign race (another reader compiled, or the
            # writer mutated mid-compile) — retry from acquire()/head_plan().
        if published is not None:
            self._notify_publish(published)

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    def on_commit(self, affected=None, base_version=None, grew=False) -> None:
        """A transaction committed: schedule (or run) the next epoch.

        ``affected`` is the set of label rows the transaction touched
        (the undo journal's copy-on-write keys), ``base_version`` the
        index version when it opened, ``grew`` whether the labeling
        gained vertices.  Called by
        :class:`~repro.core.transaction.IndexTransaction`; no-op until a
        first epoch exists — there is nothing to keep current yet.
        """
        with self._lock:
            if self._head is None:
                return
            pending = self._pending
            if pending is not None and not pending.started:
                # Deferred mode: coalesce consecutive commits into one
                # recompile spanning both touched sets.
                pending.merge(affected, grew)
                return
            if pending is not None:
                # An in-flight (threaded) recompile no longer reflects the
                # tip; it must not publish over this commit.
                pending.cancelled = True
                self.cancelled_recompiles += 1
            task = _RecompileTask(
                set(affected) if affected is not None else None,
                base_version,
                grew,
            )
            self._pending = task
        mode = self.recompile_mode
        if mode == "sync":
            self._run_recompile(task)
        elif mode == "thread":
            thread = threading.Thread(
                target=self._run_recompile, args=(task,),
                name="plan-recompile", daemon=True,
            )
            self._pending_thread = thread
            thread.start()
        # "deferred": wait for pump()

    def pump(self) -> bool:
        """Run the pending deferred recompile now; True if one published."""
        task = self._pending
        if task is None or task.started:
            return False
        return self._run_recompile(task)

    def refresh(self) -> PlanEpoch | None:
        """Synchronously recompile if the head is stale; returns the head.

        The catch-all for mutations that bypassed transactions (direct
        ``upgrade_landmark`` calls, non-transactional ``DynamicHCL``
        paths): a full recompile keyed off the version stamp.
        """
        with self._lock:
            head = self._head
            if head is None or (
                head.version == self._version() and self._pending is None
            ):
                return head
            if self._pending is not None and not self._pending.started:
                self._pending.cancelled = True
                self._pending = None
                self.cancelled_recompiles += 1
        task = _RecompileTask(None, None, False)
        with self._lock:
            self._pending = task
        self._run_recompile(task)
        return self._head

    def republish(self) -> PlanEpoch | None:
        """Force a full recompile and publish a fresh epoch, stale or not.

        The integrity remedy (:class:`~repro.core.auditor.PlanAuditor`,
        :mod:`repro.core.shm` quarantine): when a plan row or its shared
        segment is found corrupt, the fix is a brand-new epoch compiled
        from the authoritative dict labeling — new plan version, new
        segment name — even though the index version never moved, so the
        staleness check in :meth:`refresh` would wave it through.
        Returns the new head (``None`` before the first epoch exists:
        the next reader compiles fresh anyway).
        """
        with self._lock:
            if self._head is None:
                return None
            if self._pending is not None and not self._pending.started:
                self._pending.cancelled = True
                self._pending = None
                self.cancelled_recompiles += 1
            task = _RecompileTask(None, None, False)
            self._pending = task
        self._run_recompile(task)
        return self._head

    def invalidate_pending(self) -> None:
        """Cancel any recompile that has not yet published.

        Called by :meth:`~repro.core.transaction.UndoJournal.rollback`:
        after a rollback, whatever a pending recompile saw (or would see)
        includes writes that no longer exist, so it must never become an
        epoch.  The version re-check at publish time would also catch it;
        this makes the guarantee unconditional and observable.
        """
        with self._lock:
            task = self._pending
            if task is not None:
                task.cancelled = True
                self._pending = None
                self.cancelled_recompiles += 1
                if OBS.enabled:
                    OBS.registry.counter("plan.epoch.cancelled").inc()

    # ------------------------------------------------------------------
    # Recompilation
    # ------------------------------------------------------------------
    def _run_recompile(self, task: _RecompileTask) -> bool:
        task.started = True
        index = self._index
        start = time.perf_counter()
        expected = self._version()
        prior = self._head
        plan = None
        incremental = False
        try:
            if (
                task.affected is not None
                and not task.grew
                and prior is not None
                and task.base_version is not None
                and prior.version == task.base_version
            ):
                plan = QueryPlan.compile_incremental(
                    prior.plan, index, task.affected
                )
                incremental = plan is not None
            if plan is None:
                plan = QueryPlan.compile(index)
        except Exception:
            # A racing writer can leave the dicts mid-mutation under the
            # "thread" mode; the snapshot is garbage either way.  Drop it —
            # the conflicting commit schedules its own recompile.
            with self._lock:
                if self._pending is task:
                    self._pending = None
                self.cancelled_recompiles += 1
            return False
        seconds = time.perf_counter() - start
        hook = _PUBLISH_HOOK
        if hook is not None:
            hook(self, task)
        with self._lock:
            if task.cancelled:
                return False
            if self._version() != expected:
                # The index moved while we compiled: this snapshot is not
                # the tip.  Discard; the mutation that moved it has (or
                # will) schedule the recompile that is.
                if self._pending is task:
                    self._pending = None
                self.cancelled_recompiles += 1
                if OBS.enabled:
                    OBS.registry.counter("plan.epoch.cancelled").inc()
                return False
            if self._pending is task:
                self._pending = None
            self._publish_locked(plan, expected, seconds, incremental)
            published = self._head
        self._notify_publish(published)
        return True

    def _publish_locked(self, plan, version, seconds, incremental) -> None:
        epoch = PlanEpoch(plan, self._next_id, version, self)
        self._next_id += 1
        old = self._head
        self._head = epoch
        self._live[epoch.epoch_id] = epoch
        if old is not None:
            old._retired = True
            if old._readers == 0:
                self._drop_locked(old)
        self.publishes += 1
        if incremental:
            self.incremental_publishes += 1
        self.last_recompile_seconds = seconds
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("plan.epoch.publishes").inc()
            if incremental:
                reg.counter("plan.epoch.incremental").inc()
            reg.gauge("plan.epoch.id").set(epoch.epoch_id)
            reg.gauge("plan.epoch.live").set(len(self._live))

    def _drop_locked(self, epoch: PlanEpoch) -> None:
        self._live.pop(epoch.epoch_id, None)
        # The retired plan's shared-memory segment (if it ever created
        # one for pool/shard fan-out) is unlinked here, at the last
        # possible reader's exit — the refcounted end of the epoch's
        # lifecycle.  Idempotent and crash-safe: the owner-side guard in
        # repro.core.shm makes a second unlink a no-op, and an atexit
        # hook sweeps segments whose workers died before draining.
        epoch.plan.release_shared()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Flat dict for ``HCLService.health()`` / operator dashboards."""
        with self._lock:
            return {
                "epoch": self._head.epoch_id if self._head else 0,
                "live": len(self._live),
                "publishes": self.publishes,
                "incremental": self.incremental_publishes,
                "cancelled": self.cancelled_recompiles,
                "pending": self._pending is not None,
                "last_recompile_seconds": self.last_recompile_seconds,
                "mode": self.recompile_mode,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlanRegistry(epoch={self.epoch_id}, live={len(self._live)}, "
            f"mode={self.recompile_mode!r})"
        )
