"""Landmark-update workloads reproducing the paper's methodology step (3).

The paper simulates dynamic behaviour with ``σ = |R| / 4`` landmark
updates: a randomly interleaved sequence of ``σ/2`` insertions (vertices
promoted from ``V \\ R``) and ``σ/2`` deletions (landmarks demoted), each
chosen with equal probability at every step subject to feasibility.  Purely
incremental and purely decremental sequences are also provided (the paper
reports they behave like the mixed case).
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from ..core.dynhcl import LandmarkUpdate
from ..errors import DatasetError

__all__ = [
    "mixed_update_sequence",
    "incremental_update_sequence",
    "decremental_update_sequence",
]


def _prepare(n: int, landmarks: Iterable[int]) -> tuple[set[int], list[int]]:
    current = set(landmarks)
    for r in current:
        if not 0 <= r < n:
            raise DatasetError(f"landmark {r} out of range [0, {n})")
    outside = [v for v in range(n) if v not in current]
    return current, outside


def mixed_update_sequence(
    n: int,
    landmarks: Sequence[int],
    sigma: int | None = None,
    seed: int = 0,
) -> list[LandmarkUpdate]:
    """The paper's mixed workload: σ/2 insertions + σ/2 deletions, shuffled.

    Parameters
    ----------
    n:
        Number of graph vertices.
    landmarks:
        Initial landmark set ``R``.
    sigma:
        Total updates; defaults to ``max(2, |R| // 4)`` rounded even, as in
        the paper's step (3).
    seed:
        Workload randomness.

    Returns
    -------
    list[LandmarkUpdate]
        A feasible sequence: every ``add`` targets a current non-landmark,
        every ``remove`` a current landmark, when replayed in order.
    """
    rng = random.Random(seed)
    current, outside = _prepare(n, landmarks)
    if sigma is None:
        sigma = max(2, len(current) // 4)
    sigma -= sigma % 2  # equal halves
    adds_left = sigma // 2
    removes_left = sigma // 2
    if adds_left > len(outside):
        raise DatasetError(
            f"cannot schedule {adds_left} insertions with only "
            f"{len(outside)} non-landmark vertices"
        )

    updates: list[LandmarkUpdate] = []
    while adds_left or removes_left:
        do_add = adds_left and (
            not removes_left or not current or rng.random() < 0.5
        )
        if do_add and outside:
            i = rng.randrange(len(outside))
            outside[i], outside[-1] = outside[-1], outside[i]
            v = outside.pop()
            current.add(v)
            adds_left -= 1
            updates.append(LandmarkUpdate("add", v))
        elif removes_left and current:
            v = rng.choice(sorted(current))
            current.discard(v)
            outside.append(v)
            removes_left -= 1
            updates.append(LandmarkUpdate("remove", v))
        else:  # pragma: no cover - only hit on degenerate inputs
            break
    return updates


def incremental_update_sequence(
    n: int, landmarks: Sequence[int], count: int, seed: int = 0
) -> list[LandmarkUpdate]:
    """``count`` insertions only (the paper's purely incremental test)."""
    rng = random.Random(seed)
    current, outside = _prepare(n, landmarks)
    if count > len(outside):
        raise DatasetError(f"cannot insert {count} landmarks; {len(outside)} candidates")
    chosen = rng.sample(outside, count)
    return [LandmarkUpdate("add", v) for v in chosen]


def decremental_update_sequence(
    n: int, landmarks: Sequence[int], count: int, seed: int = 0
) -> list[LandmarkUpdate]:
    """``count`` deletions only (the paper's purely decremental test)."""
    rng = random.Random(seed)
    current, _ = _prepare(n, landmarks)
    if count > len(current):
        raise DatasetError(f"cannot remove {count} landmarks; {len(current)} present")
    chosen = rng.sample(sorted(current), count)
    return [LandmarkUpdate("remove", v) for v in chosen]
