"""Synthetic stand-ins for the paper's Table 1 datasets.

The paper evaluates on 13 graphs spanning road, internet, web, ratings,
social and synthetic-random topologies, up to 1.6B edges.  A pure-Python
stack cannot sweep that size (repro band 3/5), so each dataset is replaced
by a generator that preserves its *class signature* — topology family,
weightedness, average degree — at roughly 1/1000 of the vertex count.
Real DIMACS / edge-list files can be substituted via :mod:`repro.graphs.io`
without touching the harness.

Every dataset is deterministic given its name (fixed seed per entry).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..errors import DatasetError
from ..graphs.generators import (
    barabasi_albert,
    community_graph,
    erdos_renyi,
    random_bipartite,
    road_grid,
)
from ..graphs.graph import Graph
from ..graphs.weights import assign_uniform_integer_weights

__all__ = ["DatasetSpec", "TABLE1_DATASETS", "dataset_names", "make_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table 1 row: provenance plus the scaled generator."""

    name: str
    kind: str
    weighted: bool
    paper_vertices: int
    paper_edges: int
    builder: Callable[[float, int], Graph]
    sparse: bool  # CH-GSP is only run on sparse graphs, as in the paper

    def build(self, scale: float = 1.0, seed: int = 0) -> Graph:
        """Instantiate the stand-in graph at the given size multiplier."""
        g = self.builder(scale, seed)
        if self.weighted and g.unweighted:
            g = assign_uniform_integer_weights(g, 1, 10, seed=seed + 1)
        return g


def _scaled(value: int, scale: float, minimum: int = 8) -> int:
    return max(minimum, round(value * scale))


def _internet_like(scale: float, seed: int) -> Graph:
    """AS-graph profile: power-law, tree-like core, avg degree ~2.5."""
    n = _scaled(2000, scale)
    g = barabasi_albert(n, 1, seed=seed)
    rng = random.Random(seed + 7)
    extra = n // 4  # lift average degree from ~2 to ~2.5
    added = 0
    while added < extra:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, 1.0)
            added += 1
    return g


def _community(base_n: int, base_communities: int, k_intra: int):
    def build(scale: float, seed: int) -> Graph:
        n = _scaled(base_n, scale)
        communities = max(2, round(base_communities * scale)) if scale < 1 else base_communities
        size = n // communities
        k = max(2, min(k_intra, size - 1))
        return community_graph(n, communities, k, 0.03, seed=seed)

    return build


def _grid(rows: int, cols: int):
    def build(scale: float, seed: int) -> Graph:
        factor = scale**0.5
        return road_grid(
            _scaled(rows, factor, 3), _scaled(cols, factor, 3), seed=seed
        )

    return build


#: Table 1 rows, in the paper's order (sorted by nondecreasing |V|).
TABLE1_DATASETS: tuple[DatasetSpec, ...] = (
    DatasetSpec(
        "ERD", "Uniform", True, 10_000, 24_998_846,
        lambda s, seed: erdos_renyi(_scaled(1500, s), 30, seed=seed),
        sparse=False,
    ),
    DatasetSpec(
        "LUX", "Road", True, 30_647, 37_773, _grid(50, 40), sparse=True
    ),
    DatasetSpec(
        "CAI", "Internet", True, 32_000, 40_204, _internet_like, sparse=True
    ),
    DatasetSpec(
        "UK-W", "Web", False, 129_632, 11_744_049,
        _community(1500, 15, 10),
        sparse=False,
    ),
    DatasetSpec(
        "NW", "Road", True, 1_207_945, 1_410_387, _grid(60, 50), sparse=True
    ),
    DatasetSpec(
        "NE", "Road", True, 1_524_453, 1_934_010, _grid(64, 56), sparse=True
    ),
    DatasetSpec(
        "YAH", "Ratings", False, 1_625_951, 256_804_235,
        lambda s, seed: random_bipartite(
            _scaled(400, s), _scaled(1200, s), 20, seed=seed
        ),
        sparse=False,
    ),
    DatasetSpec(
        "ITA", "Road", True, 2_077_709, 2_589_431, _grid(70, 60), sparse=True
    ),
    DatasetSpec(
        "DEU", "Road", True, 4_047_577, 4_907_447, _grid(90, 70), sparse=True
    ),
    DatasetSpec(
        "U-BAR", "Power-Law", False, 50_000_000, 149_985_000,
        lambda s, seed: barabasi_albert(_scaled(8000, s), 3, seed=seed),
        sparse=False,
    ),
    DatasetSpec(
        "W-BAR", "Power-Law", True, 50_000_000, 149_985_000,
        lambda s, seed: barabasi_albert(_scaled(8000, s), 3, seed=seed + 101),
        sparse=False,
    ),
    DatasetSpec(
        "USA", "Road", True, 23_947_347, 28_854_312, _grid(120, 100), sparse=True
    ),
    DatasetSpec(
        "TWI", "Social", False, 52_579_682, 1_614_106_500,
        _community(6000, 60, 10),
        sparse=False,
    ),
)

_BY_NAME = {spec.name: spec for spec in TABLE1_DATASETS}


def dataset_names() -> list[str]:
    """Dataset names in Table 1 order."""
    return [spec.name for spec in TABLE1_DATASETS]


def make_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Graph:
    """Instantiate a Table 1 stand-in by name.

    ``scale`` multiplies the default vertex count (0.1 for smoke tests,
    1.0 for the paper-shaped runs).
    """
    spec = _BY_NAME.get(name.upper())
    if spec is None:
        raise DatasetError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        )
    return spec.build(scale=scale, seed=seed)


def dataset_spec(name: str) -> DatasetSpec:
    """The :class:`DatasetSpec` registered under ``name``."""
    spec = _BY_NAME.get(name.upper())
    if spec is None:
        raise DatasetError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        )
    return spec


__all__.append("dataset_spec")
