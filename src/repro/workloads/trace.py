"""Replayable operation traces.

A *trace* is a recorded sequence of index operations — landmark updates and
queries — that can be saved as JSON and replayed against any engine that
speaks the small ``add/remove/query`` protocol.  Traces make comparative
experiments airtight (DYN-HCL and CH-GSP consume byte-identical workloads)
and let users capture a production workload once and benchmark candidate
configurations offline.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, TextIO

from ..errors import ParseError

__all__ = ["TraceOp", "Trace", "ReplayResult", "replay"]

_SCHEMA = "dyn-hcl-trace/1"
_KINDS = ("add", "remove", "query")


@dataclass(frozen=True)
class TraceOp:
    """One operation: ``add v`` / ``remove v`` / ``query s t``."""

    kind: str
    a: int
    b: int | None = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ParseError(f"unknown trace op kind {self.kind!r}")
        if self.kind == "query" and self.b is None:
            raise ParseError("query ops need two vertices")


class Trace:
    """An ordered list of :class:`TraceOp` with JSON persistence."""

    def __init__(self, ops: list[TraceOp] | None = None):
        self.ops: list[TraceOp] = list(ops or [])

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add_landmark(self, v: int) -> "Trace":
        """Append a landmark insertion."""
        self.ops.append(TraceOp("add", v))
        return self

    def remove_landmark(self, v: int) -> "Trace":
        """Append a landmark removal."""
        self.ops.append(TraceOp("remove", v))
        return self

    def query(self, s: int, t: int) -> "Trace":
        """Append a landmark-constrained distance query."""
        self.ops.append(TraceOp("query", s, t))
        return self

    def __len__(self) -> int:
        return len(self.ops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self.ops == other.ops

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, target: str | Path | TextIO) -> None:
        """Write the trace as JSON."""
        payload = {
            "schema": _SCHEMA,
            "ops": [
                [op.kind, op.a] if op.b is None else [op.kind, op.a, op.b]
                for op in self.ops
            ],
        }
        if isinstance(target, (str, Path)):
            with open(target, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
        else:
            json.dump(payload, target)

    @classmethod
    def load(cls, source: str | Path | TextIO) -> "Trace":
        """Read a JSON trace."""
        if isinstance(source, (str, Path)):
            with open(source, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        else:
            payload = json.load(source)
        if payload.get("schema") != _SCHEMA:
            raise ParseError(f"unknown trace schema {payload.get('schema')!r}")
        ops = []
        for row in payload["ops"]:
            if len(row) == 2:
                ops.append(TraceOp(row[0], row[1]))
            elif len(row) == 3:
                ops.append(TraceOp(row[0], row[1], row[2]))
            else:
                raise ParseError(f"malformed trace op {row!r}")
        return cls(ops)


class TraceEngine(Protocol):
    """What :func:`replay` needs from an engine."""

    def add_landmark(self, v: int): ...

    def remove_landmark(self, v: int): ...


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one trace against one engine."""

    queries: int
    updates: int
    answers: list[float]
    seconds: float

    @property
    def amortized_seconds(self) -> float:
        """Wall-clock per query (the Table 3 charging scheme)."""
        return self.seconds / self.queries if self.queries else 0.0


def replay(trace: Trace, engine, query_method: str | None = None) -> ReplayResult:
    """Run every op of ``trace`` against ``engine`` and time the whole run.

    ``engine`` must expose ``add_landmark`` / ``remove_landmark`` and a
    query callable — ``query_method`` selects it by name, defaulting to
    ``query`` and falling back to ``landmark_constrained_distance`` (the
    CH-GSP spelling).  Returns the answers in trace order so two engines'
    replays can be compared element-wise.
    """
    if query_method is None:
        query_method = (
            "query" if hasattr(engine, "query") else "landmark_constrained_distance"
        )
    query = getattr(engine, query_method)
    answers: list[float] = []
    updates = 0
    start = time.perf_counter()
    for op in trace.ops:
        if op.kind == "add":
            engine.add_landmark(op.a)
            updates += 1
        elif op.kind == "remove":
            engine.remove_landmark(op.a)
            updates += 1
        else:
            answers.append(query(op.a, op.b))
    elapsed = time.perf_counter() - start
    return ReplayResult(
        queries=len(answers), updates=updates, answers=answers, seconds=elapsed
    )
