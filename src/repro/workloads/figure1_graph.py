"""Reconstruction of the paper's Figure 1 example graph.

The figure itself is only described textually in the paper source we work
from, so the graph is reconstructed from the worked narrative (§3, last
paragraphs).  The reconstruction reproduces every checkable statement:

* ``R = {5, 7}`` with ``δ_H(5, 7) = 2``;
* ``L(1) = {(5, 2), (7, 1)}`` via paths ``(1, 3, 5)`` and ``(1, 7)``;
* ``L(6) = {(5, 1), (7, 1)}`` (6 adjacent to both landmarks);
* ``L(8) = {(5, 1)}`` only — every shortest ``7 -> 8`` path crosses 5;
* promoting 3: ``δ_H(3, 5) = 1``, ``δ_H(3, 7) = 2``; the pruned search
  settles ``{1, 2, 4, 6}`` at distance 1, reaches landmark 5 (distance 1)
  and landmark 7 (distance 2), labels 9 at distance 2 and 10 at distance 3,
  and prunes on 8 at distance 4 because ``QUERY(3, 8) = 2``;
  ``REACHED-VER[5] = {1, 2, 4, 6, 9, 10}``; entries ``(5, 2)`` are removed
  from ``L(1)``, ``L(2)``, ``L(4)`` while 6 and 9 keep ``(5, 1)``;
* demoting 7: entries ``(7, 1)`` leave ``L(1)``, ``L(6)``, ``L(11)``;
  ``(7, 2)`` leaves ``L(2)``, ``L(4)``, ``L(9)``; ``(7, 3)`` leaves
  ``L(10)``; ``L(7)`` becomes ``{(3, 2), (5, 2)}``; the re-cover sweeps add
  ``(3, 3)`` and ``(5, 3)`` to ``L(11)``; ``L(8)`` is untouched.

**Known discrepancy.** The narrative also removes the entry for landmark 5
from ``L(10)`` after promoting 3, but in any graph satisfying the facts
above the path ``5 - 9 - 10`` (length 2, no internal landmark) survives, so
Algorithm 1's own keep-test (line 34, certified by neighbor 9) retains the
entry.  We follow the algorithm — and the canonical minimal index — rather
than the figure caption; see EXPERIMENTS.md.

Vertex ids keep the paper's 1-based numbering; vertex 0 exists but is
isolated and unlabeled.
"""

from __future__ import annotations

from ..graphs.graph import Graph

__all__ = ["figure1_graph", "FIGURE1_INITIAL_LANDMARKS", "FIGURE1_EDGES"]

#: Edges of the reconstructed Figure 1 graph (unweighted, paper numbering).
FIGURE1_EDGES: tuple[tuple[int, int], ...] = (
    (1, 2),
    (1, 3),
    (1, 4),
    (1, 7),
    (2, 3),
    (3, 4),
    (3, 5),
    (3, 6),
    (5, 6),
    (5, 8),
    (5, 9),
    (6, 7),
    (6, 9),
    (7, 11),
    (8, 10),
    (9, 10),
)

#: The initial landmark set of the example.
FIGURE1_INITIAL_LANDMARKS: tuple[int, ...] = (5, 7)


def figure1_graph() -> Graph:
    """The 11-vertex unweighted example graph of Figure 1."""
    g = Graph(12, unweighted=True)
    for u, v in FIGURE1_EDGES:
        g.add_edge(u, v, 1.0)
    return g
