"""Query workloads: uniform and skewed vertex pairs.

The paper issues ``q = 10^7`` uniform queries (step 5 of its methodology);
the scaled default here is ``10^4`` (configurable).  Real query logs are
rarely uniform, so a Zipf-skewed generator is provided too — it is what
makes the cache layer and the workload advisor measurable.
"""

from __future__ import annotations

import random
from typing import Collection

from ..errors import DatasetError

__all__ = ["random_query_pairs", "zipf_query_pairs"]


def random_query_pairs(
    n: int,
    q: int,
    seed: int = 0,
    exclude: Collection[int] = (),
) -> list[tuple[int, int]]:
    """``q`` uniform random (s, t) pairs with ``s != t``.

    ``exclude`` removes vertices (e.g. landmarks) from the candidate pool,
    which matches querying over ``V \\ R`` where the landmark-constrained
    bound is not trivially exact.
    """
    pool = [v for v in range(n) if v not in set(exclude)]
    if len(pool) < 2:
        raise DatasetError("need at least two candidate vertices for queries")
    rng = random.Random(seed)
    pairs: list[tuple[int, int]] = []
    for _ in range(q):
        s = pool[rng.randrange(len(pool))]
        t = pool[rng.randrange(len(pool))]
        while t == s:
            t = pool[rng.randrange(len(pool))]
        pairs.append((s, t))
    return pairs


def zipf_query_pairs(
    n: int,
    q: int,
    alpha: float = 1.0,
    seed: int = 0,
    exclude: Collection[int] = (),
) -> list[tuple[int, int]]:
    """``q`` pairs with Zipf-skewed endpoint popularity.

    Vertex popularity follows ``rank^-alpha`` over a seeded random rank
    permutation; a handful of "hot" vertices dominate the workload, the
    profile query caches and the landmark advisor are designed for.
    ``alpha = 0`` degenerates to the uniform generator.
    """
    if alpha < 0:
        raise DatasetError(f"zipf exponent must be >= 0, got {alpha}")
    pool = [v for v in range(n) if v not in set(exclude)]
    if len(pool) < 2:
        raise DatasetError("need at least two candidate vertices for queries")
    rng = random.Random(seed)
    rng.shuffle(pool)  # random rank assignment
    weights = [1.0 / (rank + 1) ** alpha for rank in range(len(pool))]

    pairs: list[tuple[int, int]] = []
    for _ in range(q):
        s, t = rng.choices(pool, weights=weights, k=2)
        while t == s:
            t = rng.choices(pool, weights=weights, k=1)[0]
        pairs.append((s, t))
    return pairs
