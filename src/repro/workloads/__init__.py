"""Workloads: dataset stand-ins, update sequences, query generators."""

from .datasets import (
    TABLE1_DATASETS,
    DatasetSpec,
    dataset_names,
    dataset_spec,
    make_dataset,
)
from .figure1_graph import FIGURE1_EDGES, FIGURE1_INITIAL_LANDMARKS, figure1_graph
from .queries import random_query_pairs, zipf_query_pairs
from .trace import ReplayResult, Trace, TraceOp, replay
from .updates import (
    decremental_update_sequence,
    incremental_update_sequence,
    mixed_update_sequence,
)

__all__ = [
    "DatasetSpec",
    "TABLE1_DATASETS",
    "dataset_names",
    "dataset_spec",
    "make_dataset",
    "figure1_graph",
    "FIGURE1_EDGES",
    "FIGURE1_INITIAL_LANDMARKS",
    "random_query_pairs",
    "zipf_query_pairs",
    "Trace",
    "TraceOp",
    "ReplayResult",
    "replay",
    "mixed_update_sequence",
    "incremental_update_sequence",
    "decremental_update_sequence",
]
