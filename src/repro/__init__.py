"""``repro`` — DYN-HCL: fast landmark reconfiguration for Highway Cover indexes.

Pure-Python reproduction of *Fast Landmark Reconfiguration for Highway Cover
Indexes* (EDBT 2026): the static HCL framework, the dynamic landmark-update
algorithms ``UPGRADE-LMK`` / ``DOWNGRADE-LMK``, the CH-GSP competitor, the
shortest-beer-path application, and the full experiment harness.

Quickstart
----------
>>> from repro import Graph, DynamicHCL
>>> g = Graph(5)
>>> for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]:
...     g.add_edge(u, v, 1.0)
>>> dyn = DynamicHCL.build(g, [0])
>>> _ = dyn.add_landmark(2)      # UPGRADE-LMK
>>> dyn.query(1, 3)              # landmark-constrained distance
2.0
>>> dyn.distance(1, 3)           # exact distance
2.0
"""

from .breaker import CircuitBreaker
from .budget import Budget, DegradedResult
from .core import (
    DowngradeStats,
    DynamicHCL,
    HCLIndex,
    Highway,
    IndexAuditor,
    IndexStats,
    IndexTransaction,
    Labeling,
    LandmarkUpdate,
    UpgradeStats,
    WriteAheadLog,
    build_hcl,
    downgrade_landmark,
    select_landmarks,
    upgrade_landmark,
)
from .errors import (
    AuditError,
    CheckpointError,
    CircuitOpenError,
    CoverPropertyError,
    DatasetError,
    DeadlineExceeded,
    GraphError,
    GraphFormatError,
    IndexStateError,
    LandmarkError,
    Overloaded,
    ParseError,
    RecoveryError,
    ReproError,
    ShardUnavailable,
    TransactionError,
)
from .graphs import DiGraph, Graph
from .retry import BackoffPolicy
from .service import HCLService, RecoveryReport
from .shard import ShardedService

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Graph",
    "DiGraph",
    "Highway",
    "Labeling",
    "HCLIndex",
    "IndexStats",
    "build_hcl",
    "upgrade_landmark",
    "UpgradeStats",
    "downgrade_landmark",
    "DowngradeStats",
    "DynamicHCL",
    "LandmarkUpdate",
    "select_landmarks",
    "HCLService",
    "RecoveryReport",
    "IndexTransaction",
    "WriteAheadLog",
    "Budget",
    "DegradedResult",
    "BackoffPolicy",
    "CircuitBreaker",
    "IndexAuditor",
    "ShardedService",
    "ReproError",
    "GraphError",
    "IndexStateError",
    "LandmarkError",
    "CoverPropertyError",
    "DatasetError",
    "ParseError",
    "GraphFormatError",
    "CheckpointError",
    "RecoveryError",
    "TransactionError",
    "DeadlineExceeded",
    "Overloaded",
    "CircuitOpenError",
    "ShardUnavailable",
    "AuditError",
]
