"""Compressed sparse row (CSR) snapshots of graphs.

Adjacency-list graphs are ideal for the mutation-heavy dynamic algorithms,
but large *static* workloads (BUILDHCL over a frozen graph, bulk query
serving) benefit from a compact immutable layout: one offsets array plus
flat neighbor/weight arrays (``array('q')`` / ``array('d')``) — roughly
3-4x less memory than tuple lists.  In pure CPython the flat layout does
*not* beat tuple lists on speed (boxing on every indexed read); the win is
memory and the snapshot/immutability semantics, and the layout is the one
a C extension would accelerate directly.  ``benchmarks/bench_csr.py``
records the trade-off.

:class:`CSRGraph` is a read-only snapshot exposing the same ``n`` /
``unweighted`` / ``neighbors`` protocol the search kernels consume, so
every kernel in :mod:`repro.graphs.traversal` (and therefore ``BUILDHCL``)
accepts it unchanged.  ``neighbors`` materializes one vertex's slice as a
list of pairs; the dedicated :func:`csr_dijkstra` avoids even that by
walking the flat arrays directly.
"""

from __future__ import annotations

import heapq
import math
from array import array

from ..errors import GraphError
from .graph import Graph

INF = math.inf

__all__ = ["CSRGraph", "csr_dijkstra"]


class CSRGraph:
    """Immutable CSR snapshot of an undirected graph."""

    __slots__ = ("n", "m", "unweighted", "_offsets", "_targets", "_weights")

    def __init__(self, graph: Graph):
        self.n = graph.n
        self.m = graph.m
        self.unweighted = graph.unweighted
        # Every snapshot — the empty graph included — carries the leading
        # sentinel offset, so the slice arithmetic in ``neighbors`` stays
        # total: ``offsets`` always has exactly ``n + 1`` cells.
        # "q" (int64), not "l": the C long is 4 bytes on LLP64 platforms
        # (64-bit Windows), where cumulative offsets would silently wrap
        # past 2^31 label/edge entries.  Every flat int array in the
        # serving stack uses the fixed-width typecode for this reason.
        offsets = array("q", [0])
        targets = array("q")
        weights = array("d")
        if graph.n == 0:
            self._offsets = offsets
            self._targets = targets
            self._weights = weights
            return
        total = 0
        for v in graph.vertices():
            adj = graph.neighbors(v)
            total += len(adj)
            offsets.append(total)
            for u, w in adj:
                targets.append(u)
                weights.append(w)
        self._offsets = offsets
        self._targets = targets
        self._weights = weights

    @classmethod
    def from_arrays(
        cls,
        n: int,
        m: int,
        unweighted: bool,
        offsets: array,
        targets: array,
        weights: array,
    ) -> "CSRGraph":
        """Rebuild a snapshot directly from its flat arrays.

        This is the constructor multiprocessing workers use: a snapshot is
        decomposed into picklable arrays once, shipped to each worker, and
        reassembled here without re-walking an adjacency-list graph.
        """
        if n < 0:
            raise GraphError(f"number of vertices must be >= 0, got {n}")
        if len(offsets) != n + 1 or offsets[0] != 0:
            raise GraphError(
                f"offsets must hold n + 1 = {n + 1} cells starting at 0"
            )
        if len(targets) != offsets[-1] or len(weights) != offsets[-1]:
            raise GraphError(
                f"targets/weights must hold offsets[-1] = {offsets[-1]} cells"
            )
        if offsets[-1] != 2 * m:
            raise GraphError(
                f"m = {m} inconsistent with offsets[-1] = {offsets[-1]}; "
                "undirected snapshots store each edge in both endpoint rows"
            )
        csr = cls.__new__(cls)
        csr.n = n
        csr.m = m
        csr.unweighted = unweighted
        csr._offsets = offsets
        csr._targets = targets
        csr._weights = weights
        return csr

    def __reduce__(self):
        # ``__slots__`` without ``__dict__`` needs explicit pickle support;
        # round-tripping through ``from_arrays`` keeps workers honest about
        # the invariants they receive.
        return (
            CSRGraph.from_arrays,
            (
                self.n,
                self.m,
                self.unweighted,
                self._offsets,
                self._targets,
                self._weights,
            ),
        )

    def neighbors(self, u: int) -> list[tuple[int, float]]:
        """The ``(neighbor, weight)`` pairs of ``u`` (materialized)."""
        lo, hi = self._offsets[u], self._offsets[u + 1]
        return list(zip(self._targets[lo:hi], self._weights[lo:hi]))

    def degree(self, u: int) -> int:
        """Number of incident edges."""
        return self._offsets[u + 1] - self._offsets[u]

    def vertices(self) -> range:
        """The vertex id range."""
        return range(self.n)

    @property
    def average_degree(self) -> float:
        """Average vertex degree."""
        return (2.0 * self.m / self.n) if self.n else 0.0

    def memory_cells(self) -> int:
        """Array cells held (offsets + targets + weights)."""
        return len(self._offsets) + len(self._targets) + len(self._weights)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(n={self.n}, m={self.m})"


def csr_dijkstra(csr: CSRGraph, source: int) -> list[float]:
    """Dijkstra over the flat CSR arrays (no per-edge tuple allocation)."""
    if not 0 <= source < csr.n:
        raise GraphError(f"source {source} out of range [0, {csr.n})")
    offsets = csr._offsets
    targets = csr._targets
    weights = csr._weights
    dist = [INF] * csr.n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for i in range(offsets[u], offsets[u + 1]):
            v = targets[i]
            nd = d + weights[i]
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist
