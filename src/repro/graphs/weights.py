"""Weight assignment helpers for synthetic instances.

The DIMACS road instances the paper evaluates on carry integer arc weights;
we mirror that by drawing integer weights, which keeps shortest-path
comparisons exact (no floating-point tie ambiguity) — a property the
canonical-index equality tests rely on.
"""

from __future__ import annotations

import random

from .graph import Graph

__all__ = ["assign_uniform_integer_weights", "unit_weights"]


def assign_uniform_integer_weights(
    g: Graph, low: int = 1, high: int = 10, seed: int | None = None
) -> Graph:
    """A copy of ``g`` with integer weights drawn uniformly from [low, high].

    The input graph's topology is preserved; the result is a *weighted*
    graph regardless of the input's ``unweighted`` flag.
    """
    if low < 1 or high < low:
        raise ValueError(f"invalid weight range [{low}, {high}]")
    rng = random.Random(seed)
    out = Graph(g.n, unweighted=False)
    for u, v, _ in g.edges():
        out.add_edge(u, v, float(rng.randint(low, high)))
    return out


def unit_weights(g: Graph) -> Graph:
    """A copy of ``g`` with all weights forced to 1 and flagged unweighted."""
    out = Graph(g.n, unweighted=True)
    for u, v, _ in g.edges():
        out.add_edge(u, v, 1.0)
    return out
