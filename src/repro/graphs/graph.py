"""Undirected weighted graph used throughout the library.

The representation is an adjacency list of ``(neighbor, weight)`` tuples,
which is the fastest layout for the Dijkstra/BFS-heavy workloads of the HCL
algorithms in pure Python.  Vertices are dense integer ids ``0..n-1`` as in
the DIMACS instances the paper evaluates on.

Weights must be positive and finite (the paper assumes
``ω : E → R+``); unweighted graphs are modelled with unit weights plus the
``unweighted`` flag, which the algorithms use to switch Dijkstra searches to
FIFO BFS exactly as described in the paper's experimental setup.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from ..errors import EdgeError, VertexError, WeightError

__all__ = ["Graph"]


class Graph:
    """A simple undirected graph with positive edge weights.

    Parameters
    ----------
    n:
        Number of vertices. Vertices are the integers ``0 .. n-1``.
    unweighted:
        When ``True`` every edge weight must be exactly ``1`` and searches
        over the graph may use BFS instead of Dijkstra.

    Examples
    --------
    >>> g = Graph(3)
    >>> g.add_edge(0, 1, 2.0)
    >>> g.add_edge(1, 2, 3.0)
    >>> sorted(g.neighbors(1))
    [(0, 2.0), (2, 3.0)]
    """

    __slots__ = ("_adj", "_m", "unweighted", "_rev")

    def __init__(self, n: int, unweighted: bool = False):
        if n < 0:
            raise VertexError(f"number of vertices must be >= 0, got {n}")
        self._adj: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        self._m = 0
        self.unweighted = unweighted
        # Revision counter: bumped by every structural mutation so derived
        # read-optimized structures (repro.core.plan.QueryPlan) can check
        # validity with one integer compare instead of rescanning.
        self._rev = 0

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def m(self) -> int:
        """Number of (undirected) edges."""
        return self._m

    @property
    def average_degree(self) -> float:
        """Average vertex degree ``2m / n`` (0 for the empty graph)."""
        return (2.0 * self._m / self.n) if self.n else 0.0

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "unweighted" if self.unweighted else "weighted"
        return f"Graph(n={self.n}, m={self.m}, {kind})"

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        """Append a fresh isolated vertex and return its id."""
        self._adj.append([])
        self._rev += 1
        return self.n - 1

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise VertexError(f"vertex {v} out of range [0, {self.n})")

    def _check_weight(self, w: float) -> None:
        if not (isinstance(w, (int, float)) and math.isfinite(w) and w > 0):
            raise WeightError(f"edge weight must be a positive finite number, got {w!r}")
        if self.unweighted and w != 1:
            raise WeightError("unweighted graphs only accept unit edge weights")

    def add_edge(self, u: int, v: int, w: float = 1.0) -> None:
        """Add the undirected edge ``{u, v}`` with weight ``w``.

        Self-loops are rejected (they can never lie on a shortest path with
        positive weights) and so are duplicate edges.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        self._check_weight(w)
        if u == v:
            raise EdgeError(f"self-loop on vertex {u} is not allowed")
        if self.has_edge(u, v):
            raise EdgeError(f"edge ({u}, {v}) already present")
        w = float(w)
        self._adj[u].append((v, w))
        self._adj[v].append((u, w))
        self._m += 1
        self._rev += 1

    def remove_edge(self, u: int, v: int) -> float:
        """Remove edge ``{u, v}`` and return its weight."""
        self._check_vertex(u)
        self._check_vertex(v)
        weight = None
        for i, (x, w) in enumerate(self._adj[u]):
            if x == v:
                weight = w
                del self._adj[u][i]
                break
        if weight is None:
            raise EdgeError(f"edge ({u}, {v}) not present")
        for i, (x, _) in enumerate(self._adj[v]):
            if x == u:
                del self._adj[v][i]
                break
        self._m -= 1
        self._rev += 1
        return weight

    def set_weight(self, u: int, v: int, w: float) -> float:
        """Change the weight of an existing edge; returns the old weight."""
        self._check_weight(w)
        old = self.remove_edge(u, v)
        w = float(w)
        self._adj[u].append((v, w))
        self._adj[v].append((u, w))
        self._m += 1
        self._rev += 1
        return old

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def neighbors(self, u: int) -> list[tuple[int, float]]:
        """The list of ``(neighbor, weight)`` pairs of ``u``.

        The returned list is the internal adjacency list; callers must not
        mutate it.
        """
        return self._adj[u]

    def degree(self, u: int) -> int:
        """Number of edges incident to ``u``."""
        return len(self._adj[u])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        self._check_vertex(u)
        self._check_vertex(v)
        adj = self._adj[u] if len(self._adj[u]) <= len(self._adj[v]) else self._adj[v]
        target = v if adj is self._adj[u] else u
        return any(x == target for x, _ in adj)

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``; raises :class:`EdgeError` if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        for x, w in self._adj[u]:
            if x == v:
                return w
        raise EdgeError(f"edge ({u}, {v}) not present")

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over edges once each as ``(u, v, w)`` with ``u < v``."""
        for u, adj in enumerate(self._adj):
            for v, w in adj:
                if u < v:
                    yield (u, v, w)

    def vertices(self) -> range:
        """The vertex id range ``0 .. n-1``."""
        return range(self.n)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int] | tuple[int, int, float]],
        unweighted: bool = False,
    ) -> "Graph":
        """Build a graph from an edge iterable.

        Each item is ``(u, v)`` (weight 1) or ``(u, v, w)``. Duplicate edges
        are silently skipped, which makes it convenient to ingest edge lists
        that record both orientations.
        """
        g = cls(n, unweighted=unweighted)
        for e in edges:
            if len(e) == 2:
                u, v = e  # type: ignore[misc]
                w = 1.0
            else:
                u, v, w = e  # type: ignore[misc]
            if u == v or g.has_edge(u, v):
                continue
            g.add_edge(u, v, w)
        return g

    def copy(self) -> "Graph":
        """Deep copy of the graph."""
        g = Graph(self.n, unweighted=self.unweighted)
        g._adj = [list(adj) for adj in self._adj]
        g._m = self._m
        return g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self.n != other.n or self.m != other.m:
            return False
        return all(sorted(a) == sorted(b) for a, b in zip(self._adj, other._adj))

    def __hash__(self) -> int:  # graphs are mutable; identity hash
        return id(self)
