"""Graph substrate: data structures, search kernels, generators, I/O."""

from .analysis import (
    GraphProfile,
    connected_components,
    degree_histogram,
    double_sweep_diameter,
    is_connected,
    largest_component,
    profile_graph,
)
from .csr import CSRGraph, csr_dijkstra
from .digraph import DiGraph
from .generators import (
    barabasi_albert,
    community_graph,
    connect_components,
    erdos_renyi,
    random_bipartite,
    road_grid,
)
from .graph import Graph
from .io import read_dimacs, read_edge_list, write_dimacs, write_edge_list
from .pqueue import AddressableHeap, LazyHeap
from .traversal import (
    INF,
    bfs_distances,
    bounded_bidirectional_distance,
    dijkstra_distances,
    distance_between,
    flagged_single_source,
    reconstruct_path,
    single_source_distances,
    single_source_with_parents,
)
from .weights import assign_uniform_integer_weights, unit_weights

__all__ = [
    "Graph",
    "GraphProfile",
    "connected_components",
    "degree_histogram",
    "double_sweep_diameter",
    "is_connected",
    "largest_component",
    "profile_graph",
    "DiGraph",
    "CSRGraph",
    "csr_dijkstra",
    "AddressableHeap",
    "LazyHeap",
    "INF",
    "bfs_distances",
    "dijkstra_distances",
    "single_source_distances",
    "single_source_with_parents",
    "flagged_single_source",
    "bounded_bidirectional_distance",
    "distance_between",
    "reconstruct_path",
    "erdos_renyi",
    "barabasi_albert",
    "community_graph",
    "road_grid",
    "random_bipartite",
    "connect_components",
    "assign_uniform_integer_weights",
    "unit_weights",
    "read_dimacs",
    "write_dimacs",
    "read_edge_list",
    "write_edge_list",
]
