"""Shortest-path search kernels shared by every algorithm in the library.

All kernels operate on :class:`repro.graphs.Graph` (or any object exposing
``n``, ``neighbors`` and ``unweighted``).  The weighted kernels use the
lazy-deletion ``heapq`` pattern; unweighted graphs get plain FIFO BFS, which
is exactly the substitution the paper performs for its unweighted instances.

The slightly unusual kernel here is :func:`flagged_single_source`: a single
Dijkstra/BFS that, besides distances, computes for every vertex whether some
shortest path from the source avoids a *blocked* vertex set internally.
Because edge weights are strictly positive, a shortest-path parent always
settles strictly before its children, so the flag can be propagated in one
pass over the shortest-path DAG.  ``BUILDHCL`` is a thin wrapper around this
kernel (see :mod:`repro.core.build`).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Collection, Sequence

from ..obs import OBS
from ..tolerance import PRUNE_SCALE
from .graph import Graph

INF = math.inf

__all__ = [
    "INF",
    "single_source_distances",
    "dijkstra_distances",
    "bfs_distances",
    "flagged_single_source",
    "single_source_with_parents",
    "bounded_bidirectional_distance",
    "bounded_bidirectional_distance_masked",
    "distance_between",
]


def dijkstra_distances(g: Graph, source: int) -> list[float]:
    """Exact distances from ``source`` to every vertex (Dijkstra)."""
    # Dual-path dispatch: the production loop below carries zero
    # instrumentation; counting variants run only under an enabled tracer.
    if OBS.enabled:
        return _dijkstra_distances_obs(g, source)
    dist = [INF] * g.n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = g.neighbors
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def bfs_distances(g: Graph, source: int) -> list[float]:
    """Exact distances from ``source`` assuming unit weights (BFS)."""
    if OBS.enabled:
        return _bfs_distances_obs(g, source)
    dist = [INF] * g.n
    dist[source] = 0.0
    queue: deque[int] = deque([source])
    neighbors = g.neighbors
    while queue:
        u = queue.popleft()
        nd = dist[u] + 1.0
        for v, _ in neighbors(u):
            if dist[v] == INF:
                dist[v] = nd
                queue.append(v)
    return dist


def single_source_distances(g: Graph, source: int) -> list[float]:
    """Distances from ``source``, picking BFS or Dijkstra by graph kind."""
    if g.unweighted:
        return bfs_distances(g, source)
    return dijkstra_distances(g, source)


def flagged_single_source(
    g: Graph, source: int, blocked: Collection[int]
) -> tuple[list[float], list[bool]]:
    """Distances plus blocked-avoiding shortest-path flags.

    Returns ``(dist, clear)`` where ``clear[v]`` is ``True`` iff at least one
    shortest ``source -> v`` path has no *internal* vertex in ``blocked``
    (endpoints are always allowed).  ``clear[source]`` is ``True``.

    This is the canonical-coverage predicate of the HCL framework: with
    ``blocked = R \\ {r}`` and ``source = r``, vertex ``v`` is covered by
    landmark ``r`` exactly when ``clear[v]`` holds.
    """
    if OBS.enabled:
        return _flagged_single_source_obs(g, source, blocked)
    blocked_mask = [False] * g.n
    for b in blocked:
        blocked_mask[b] = True

    dist = [INF] * g.n
    clear = [False] * g.n
    dist[source] = 0.0
    clear[source] = True
    neighbors = g.neighbors

    if g.unweighted:
        queue: deque[int] = deque([source])
        while queue:
            u = queue.popleft()
            du = dist[u]
            # A path extended through u is blocked-free only if u itself is
            # not blocked (or is the source) and some shortest path to u was
            # blocked-free.
            extend = clear[u] and (u == source or not blocked_mask[u])
            nd = du + 1.0
            for v, _ in neighbors(u):
                if dist[v] == INF:
                    dist[v] = nd
                    clear[v] = extend
                    queue.append(v)
                elif dist[v] == nd and extend and not clear[v]:
                    clear[v] = True
        return dist, clear

    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        extend = clear[u] and (u == source or not blocked_mask[u])
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                clear[v] = extend
                heapq.heappush(heap, (nd, v))
            elif extend and not clear[v] and nd * PRUNE_SCALE <= dist[v]:
                # Tie join, tolerant on float weights: two summation orders
                # of the same edge multiset can land an ulp apart, and such
                # a near-tie is a tie (repro.tolerance).  u settled strictly
                # before v (positive weights, tolerance << any edge weight),
                # so the join happens before v is dequeued: clear[v] is
                # final by the time v settles.
                clear[v] = True
    return dist, clear


def single_source_with_parents(
    g: Graph, source: int
) -> tuple[list[float], list[int]]:
    """Distances and a shortest-path-tree parent array (-1 for roots)."""
    dist = [INF] * g.n
    parent = [-1] * g.n
    dist[source] = 0.0
    neighbors = g.neighbors
    if g.unweighted:
        queue: deque[int] = deque([source])
        while queue:
            u = queue.popleft()
            nd = dist[u] + 1.0
            for v, _ in neighbors(u):
                if dist[v] == INF:
                    dist[v] = nd
                    parent[v] = u
                    queue.append(v)
        return dist, parent
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def bounded_bidirectional_distance(
    g: Graph,
    s: int,
    t: int,
    upper_bound: float,
    excluded: Collection[int] = (),
    budget=None,
) -> float:
    """Exact ``s``–``t`` distance on ``G[V \\ excluded]``, capped by a bound.

    Runs a bidirectional Dijkstra that never expands vertices in
    ``excluded`` (the HCL landmark set) and abandons any branch whose
    tentative length reaches ``upper_bound``.  Returns the shortest distance
    found this way, or ``upper_bound`` when every ``s``–``t`` path in the
    induced subgraph is at least that long.

    This is the "distance-bounded bidirectional search on the subgraph of
    ``G`` induced by ``V \\ R``" that turns the HCL landmark-constrained
    upper bound into an exact distance (paper §2).
    """
    excluded_mask = [False] * g.n
    for x in excluded:
        excluded_mask[x] = True
    return bounded_bidirectional_distance_masked(
        g, s, t, upper_bound, excluded_mask, budget
    )


def bounded_bidirectional_distance_masked(
    g: Graph,
    s: int,
    t: int,
    upper_bound: float,
    excluded_mask: Sequence[bool],
    budget=None,
) -> float:
    """:func:`bounded_bidirectional_distance` with a prebuilt exclusion mask.

    Building the O(n) mask dominates small bounded searches, so batch query
    serving constructs it once per landmark-set version and reuses it for
    every pair in the batch.

    With a :class:`~repro.budget.Budget` the search runs in a budgeted
    twin that charges one step per settled vertex and abandons the
    refinement once the budget is exceeded, returning the best bound
    found so far — an anytime answer that is always >= the true distance
    (``best`` only ever shrinks from the sound ``upper_bound``).  Callers
    inspect ``budget.exceeded`` to learn whether the returned value is
    certified exact.
    """
    if budget is not None:
        return _bounded_bidirectional_masked_budgeted(
            g, s, t, upper_bound, excluded_mask, budget
        )
    if OBS.enabled:
        return _bounded_bidirectional_masked_obs(
            g, s, t, upper_bound, excluded_mask
        )
    if s == t:
        return 0.0
    if excluded_mask[s] or excluded_mask[t]:
        # Endpoints inside the excluded set have no path in the induced
        # subgraph; the landmark-constrained bound is already exact.
        return upper_bound

    dist_f = {s: 0.0}
    dist_b = {t: 0.0}
    heap_f: list[tuple[float, int]] = [(0.0, s)]
    heap_b: list[tuple[float, int]] = [(0.0, t)]
    best = upper_bound
    neighbors = g.neighbors

    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        # Expand the side with the smaller frontier priority.
        if heap_f[0][0] <= heap_b[0][0]:
            heap, dist, other = heap_f, dist_f, dist_b
        else:
            heap, dist, other = heap_b, dist_b, dist_f
        d, u = heapq.heappop(heap)
        if d > dist.get(u, INF):
            continue
        if d >= best:
            continue
        for v, w in neighbors(u):
            if excluded_mask[v]:
                continue
            nd = d + w
            if nd >= best and v not in other:
                continue
            if nd < dist.get(v, INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
            dv_other = other.get(v)
            if dv_other is not None and dist[v] + dv_other < best:
                best = dist[v] + dv_other
    return best


def distance_between(g: Graph, s: int, t: int) -> float:
    """Plain exact ``s``–``t`` distance (early-exit Dijkstra/BFS)."""
    if s == t:
        return 0.0
    dist = [INF] * g.n
    dist[s] = 0.0
    neighbors = g.neighbors
    if g.unweighted:
        queue: deque[int] = deque([s])
        while queue:
            u = queue.popleft()
            if u == t:
                return dist[u]
            nd = dist[u] + 1.0
            for v, _ in neighbors(u):
                if dist[v] == INF:
                    dist[v] = nd
                    queue.append(v)
        return INF
    heap: list[tuple[float, int]] = [(0.0, s)]
    while heap:
        d, u = heapq.heappop(heap)
        if u == t:
            return d
        if d > dist[u]:
            continue
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return INF


def reconstruct_path(parent: Sequence[int], t: int) -> list[int]:
    """Root-to-``t`` vertex sequence from a parent array."""
    path = [t]
    while parent[path[-1]] != -1:
        path.append(parent[path[-1]])
    path.reverse()
    return path


__all__.append("reconstruct_path")


# ----------------------------------------------------------------------
# Instrumented kernel variants (repro.obs).  Each mirrors its production
# twin exactly — same relaxation order, same tie handling, same returned
# values — plus work counters recorded once at the end.  Keeping them
# separate is what makes disabled tracing free: the loops above carry no
# counter updates and no per-iteration enabled checks.
# ----------------------------------------------------------------------


def _record_search(settled: int, edges: int, pushes: int) -> None:
    reg = OBS.registry
    reg.counter("search.calls").inc()
    reg.counter("search.settled").inc(settled)
    reg.counter("search.edges_scanned").inc(edges)
    reg.counter("search.heap_pushes").inc(pushes)


def _dijkstra_distances_obs(g: Graph, source: int) -> list[float]:
    dist = [INF] * g.n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = g.neighbors
    settled = edges = 0
    pushes = 1
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        settled += 1
        for v, w in neighbors(u):
            edges += 1
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
                pushes += 1
    _record_search(settled, edges, pushes)
    return dist


def _bfs_distances_obs(g: Graph, source: int) -> list[float]:
    dist = [INF] * g.n
    dist[source] = 0.0
    queue: deque[int] = deque([source])
    neighbors = g.neighbors
    settled = edges = 0
    pushes = 1
    while queue:
        u = queue.popleft()
        settled += 1
        nd = dist[u] + 1.0
        for v, _ in neighbors(u):
            edges += 1
            if dist[v] == INF:
                dist[v] = nd
                queue.append(v)
                pushes += 1
    _record_search(settled, edges, pushes)
    return dist


def _flagged_single_source_obs(
    g: Graph, source: int, blocked: Collection[int]
) -> tuple[list[float], list[bool]]:
    blocked_mask = [False] * g.n
    for b in blocked:
        blocked_mask[b] = True

    dist = [INF] * g.n
    clear = [False] * g.n
    dist[source] = 0.0
    clear[source] = True
    neighbors = g.neighbors
    settled = edges = tie_joins = 0
    pushes = 1

    if g.unweighted:
        queue: deque[int] = deque([source])
        while queue:
            u = queue.popleft()
            settled += 1
            du = dist[u]
            extend = clear[u] and (u == source or not blocked_mask[u])
            nd = du + 1.0
            for v, _ in neighbors(u):
                edges += 1
                if dist[v] == INF:
                    dist[v] = nd
                    clear[v] = extend
                    queue.append(v)
                    pushes += 1
                elif dist[v] == nd and extend and not clear[v]:
                    clear[v] = True
                    tie_joins += 1
    else:
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            settled += 1
            extend = clear[u] and (u == source or not blocked_mask[u])
            for v, w in neighbors(u):
                edges += 1
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    clear[v] = extend
                    heapq.heappush(heap, (nd, v))
                    pushes += 1
                elif extend and not clear[v] and nd * PRUNE_SCALE <= dist[v]:
                    clear[v] = True
                    tie_joins += 1
    _record_search(settled, edges, pushes)
    OBS.registry.counter("search.tie_joins").inc(tie_joins)
    return dist, clear


# Fault-injection seam (see repro.testing.faults.slow_search): called with
# each vertex settled by the *budgeted* bidirectional kernel so tests can
# advance a fake clock mid-search on an exact schedule.  Only the budgeted
# twin consults it — the production and obs loops stay hook-free.
_SETTLE_HOOK = None


def _bounded_bidirectional_masked_budgeted(
    g: Graph,
    s: int,
    t: int,
    upper_bound: float,
    excluded_mask: Sequence[bool],
    budget,
) -> float:
    """Budgeted twin of the bounded bidirectional search.

    Identical relaxation order and tie handling, plus one ``charge()``
    per settled vertex; aborts (returning the current sound bound) as
    soon as the budget reports exceeded.  A pre-exceeded budget returns
    ``upper_bound`` untouched without expanding anything.
    """
    if s == t:
        return 0.0
    if excluded_mask[s] or excluded_mask[t]:
        return upper_bound
    if budget.check():
        return upper_bound

    dist_f = {s: 0.0}
    dist_b = {t: 0.0}
    heap_f: list[tuple[float, int]] = [(0.0, s)]
    heap_b: list[tuple[float, int]] = [(0.0, t)]
    best = upper_bound
    neighbors = g.neighbors
    settle_hook = _SETTLE_HOOK
    settled = edges = 0
    pushes = 2

    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        if heap_f[0][0] <= heap_b[0][0]:
            heap, dist, other = heap_f, dist_f, dist_b
        else:
            heap, dist, other = heap_b, dist_b, dist_f
        d, u = heapq.heappop(heap)
        if d > dist.get(u, INF):
            continue
        if d >= best:
            continue
        settled += 1
        if settle_hook is not None:
            settle_hook(u)
        if budget.charge():
            break
        for v, w in neighbors(u):
            edges += 1
            if excluded_mask[v]:
                continue
            nd = d + w
            if nd >= best and v not in other:
                continue
            if nd < dist.get(v, INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
                pushes += 1
            dv_other = other.get(v)
            if dv_other is not None and dist[v] + dv_other < best:
                best = dist[v] + dv_other
    if OBS.enabled:
        _record_search(settled, edges, pushes)
        if budget.exceeded:
            OBS.registry.counter("search.budget_aborts").inc()
    return best


def _bounded_bidirectional_masked_obs(
    g: Graph,
    s: int,
    t: int,
    upper_bound: float,
    excluded_mask: Sequence[bool],
) -> float:
    OBS.registry.counter("search.bidirectional.calls").inc()
    if s == t:
        return 0.0
    if excluded_mask[s] or excluded_mask[t]:
        return upper_bound

    dist_f = {s: 0.0}
    dist_b = {t: 0.0}
    heap_f: list[tuple[float, int]] = [(0.0, s)]
    heap_b: list[tuple[float, int]] = [(0.0, t)]
    best = upper_bound
    neighbors = g.neighbors
    settled = edges = 0
    pushes = 2

    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        if heap_f[0][0] <= heap_b[0][0]:
            heap, dist, other = heap_f, dist_f, dist_b
        else:
            heap, dist, other = heap_b, dist_b, dist_f
        d, u = heapq.heappop(heap)
        if d > dist.get(u, INF):
            continue
        if d >= best:
            continue
        settled += 1
        for v, w in neighbors(u):
            edges += 1
            if excluded_mask[v]:
                continue
            nd = d + w
            if nd >= best and v not in other:
                continue
            if nd < dist.get(v, INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
                pushes += 1
            dv_other = other.get(v)
            if dv_other is not None and dist[v] + dv_other < best:
                best = dist[v] + dv_other
    _record_search(settled, edges, pushes)
    return best
