"""Structural graph metrics used by the workloads and experiments.

These are the quantities the paper's Table 1 and dataset discussion refer
to: component structure, degree profile, and an eccentricity-based diameter
estimate (exact diameters are too expensive at scale; the standard
double-sweep lower bound is what experimental papers report).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .graph import Graph
from .traversal import INF, single_source_distances

__all__ = [
    "connected_components",
    "is_connected",
    "largest_component",
    "degree_histogram",
    "double_sweep_diameter",
    "GraphProfile",
    "profile_graph",
]


def connected_components(g: Graph) -> list[list[int]]:
    """Vertex lists of the connected components, largest first."""
    seen = [False] * g.n
    components: list[list[int]] = []
    for start in g.vertices():
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        comp = [start]
        while stack:
            u = stack.pop()
            for v, _ in g.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    comp.append(v)
                    stack.append(v)
        components.append(comp)
    components.sort(key=len, reverse=True)
    return components


def is_connected(g: Graph) -> bool:
    """Whether the graph is a single connected component."""
    if g.n == 0:
        return True
    return len(connected_components(g)[0]) == g.n


def largest_component(g: Graph) -> list[int]:
    """The vertex list of the largest connected component."""
    if g.n == 0:
        return []
    return connected_components(g)[0]


def degree_histogram(g: Graph) -> dict[int, int]:
    """``degree -> vertex count`` mapping."""
    return dict(Counter(g.degree(v) for v in g.vertices()))


def double_sweep_diameter(g: Graph, start: int = 0) -> float:
    """Double-sweep diameter lower bound (exact on trees).

    One sweep from ``start`` finds the farthest vertex ``a``; a second
    sweep from ``a`` returns the largest finite distance — a tight lower
    bound on the diameter of ``start``'s component.
    """
    if g.n == 0:
        return 0.0
    dist = single_source_distances(g, start)
    a = max(
        (v for v in g.vertices() if dist[v] != INF),
        key=lambda v: dist[v],
        default=start,
    )
    dist = single_source_distances(g, a)
    finite = [d for d in dist if d != INF]
    return max(finite) if finite else 0.0


@dataclass(frozen=True)
class GraphProfile:
    """Summary statistics of a graph instance."""

    n: int
    m: int
    average_degree: float
    max_degree: int
    components: int
    diameter_lower_bound: float
    weighted: bool


def profile_graph(g: Graph) -> GraphProfile:
    """Compute a :class:`GraphProfile` (one BFS/Dijkstra triple of work)."""
    comps = connected_components(g)
    return GraphProfile(
        n=g.n,
        m=g.m,
        average_degree=g.average_degree,
        max_degree=max((g.degree(v) for v in g.vertices()), default=0),
        components=len(comps),
        diameter_lower_bound=double_sweep_diameter(g, comps[0][0]) if comps else 0.0,
        weighted=not g.unweighted,
    )
