"""Directed weighted graph, used by the directed-HCL extension.

The paper's future-work item (i) generalizes DYN-HCL to digraphs by keeping
outgoing and incoming adjacency separately; :class:`DiGraph` provides exactly
that split.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from ..errors import EdgeError, VertexError, WeightError

__all__ = ["DiGraph"]


class DiGraph:
    """A simple directed graph with positive arc weights.

    Maintains both out- and in-adjacency so that backward searches (needed
    for the incoming labels of a directed HCL index) are as cheap as forward
    ones.
    """

    __slots__ = ("_out", "_in", "_m", "unweighted")

    def __init__(self, n: int, unweighted: bool = False):
        if n < 0:
            raise VertexError(f"number of vertices must be >= 0, got {n}")
        self._out: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        self._in: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        self._m = 0
        self.unweighted = unweighted

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._out)

    @property
    def m(self) -> int:
        """Number of arcs."""
        return self._m

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(n={self.n}, m={self.m})"

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise VertexError(f"vertex {v} out of range [0, {self.n})")

    def add_arc(self, u: int, v: int, w: float = 1.0) -> None:
        """Add the arc ``u -> v`` with weight ``w``."""
        self._check_vertex(u)
        self._check_vertex(v)
        if not (isinstance(w, (int, float)) and math.isfinite(w) and w > 0):
            raise WeightError(f"arc weight must be a positive finite number, got {w!r}")
        if u == v:
            raise EdgeError(f"self-loop on vertex {u} is not allowed")
        if any(x == v for x, _ in self._out[u]):
            raise EdgeError(f"arc ({u}, {v}) already present")
        w = float(w)
        self._out[u].append((v, w))
        self._in[v].append((u, w))
        self._m += 1

    def remove_arc(self, u: int, v: int) -> float:
        """Remove arc ``u -> v`` and return its weight."""
        self._check_vertex(u)
        self._check_vertex(v)
        weight = None
        for i, (x, w) in enumerate(self._out[u]):
            if x == v:
                weight = w
                del self._out[u][i]
                break
        if weight is None:
            raise EdgeError(f"arc ({u}, {v}) not present")
        for i, (x, _) in enumerate(self._in[v]):
            if x == u:
                del self._in[v][i]
                break
        self._m -= 1
        return weight

    def out_neighbors(self, u: int) -> list[tuple[int, float]]:
        """Arcs leaving ``u`` as ``(head, weight)`` pairs."""
        return self._out[u]

    def in_neighbors(self, u: int) -> list[tuple[int, float]]:
        """Arcs entering ``u`` as ``(tail, weight)`` pairs."""
        return self._in[u]

    def out_degree(self, u: int) -> int:
        """Number of arcs leaving ``u``."""
        return len(self._out[u])

    def in_degree(self, u: int) -> int:
        """Number of arcs entering ``u``."""
        return len(self._in[u])

    def arcs(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over all arcs as ``(tail, head, weight)``."""
        for u, adj in enumerate(self._out):
            for v, w in adj:
                yield (u, v, w)

    def vertices(self) -> range:
        """The vertex id range ``0 .. n-1``."""
        return range(self.n)

    @classmethod
    def from_arcs(
        cls,
        n: int,
        arcs: Iterable[tuple[int, int] | tuple[int, int, float]],
        unweighted: bool = False,
    ) -> "DiGraph":
        """Build a digraph from an arc iterable, skipping duplicates."""
        g = cls(n, unweighted=unweighted)
        for a in arcs:
            if len(a) == 2:
                u, v = a  # type: ignore[misc]
                w = 1.0
            else:
                u, v, w = a  # type: ignore[misc]
            if u == v or any(x == v for x, _ in g._out[u]):
                continue
            g.add_arc(u, v, w)
        return g

    @classmethod
    def from_undirected(cls, g) -> "DiGraph":
        """Two opposite arcs per undirected edge (symmetric digraph)."""
        d = cls(g.n, unweighted=g.unweighted)
        for u, v, w in g.edges():
            d.add_arc(u, v, w)
            d.add_arc(v, u, w)
        return d

    def reverse(self) -> "DiGraph":
        """A new digraph with every arc reversed."""
        r = DiGraph(self.n, unweighted=self.unweighted)
        for u, v, w in self.arcs():
            r.add_arc(v, u, w)
        return r
