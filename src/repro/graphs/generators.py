"""Random-graph generators used as stand-ins for the paper's datasets.

Table 1 of the paper mixes road networks (grid-like, sparse, large
diameter), power-law graphs (Barabási–Albert), a uniform random graph
(Erdős–Rényi), a web graph, a bipartite ratings graph, and social networks.
Each generator here reproduces the structural signature of one class at a
scale a pure-Python shortest-path stack can sweep.

All generators are deterministic given ``seed`` and always return a
*connected* graph (they add a linking spanning structure when the random
draw leaves isolated pieces), since HCL indexes cover reachable pairs and
the paper's instances are connected.
"""

from __future__ import annotations

import random

from ..errors import DatasetError
from .graph import Graph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "community_graph",
    "road_grid",
    "random_bipartite",
    "connect_components",
]


def _ensure_positive(name: str, value: int) -> None:
    if value <= 0:
        raise DatasetError(f"{name} must be positive, got {value}")


def connect_components(g: Graph, seed: int | None = None) -> None:
    """Add the minimum number of random edges to make ``g`` connected.

    Mutates ``g`` in place.  Each added edge joins a random representative
    of one component to a random vertex of the growing giant component.
    """
    rng = random.Random(seed)
    seen = [False] * g.n
    components: list[list[int]] = []
    for start in g.vertices():
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        comp = [start]
        while stack:
            u = stack.pop()
            for v, _ in g.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    comp.append(v)
                    stack.append(v)
        components.append(comp)
    giant = components[0]
    for comp in components[1:]:
        u = rng.choice(giant)
        v = rng.choice(comp)
        g.add_edge(u, v, 1.0)
        giant.extend(comp)


def erdos_renyi(n: int, avg_degree: float, seed: int | None = None) -> Graph:
    """Connected Erdős–Rényi ``G(n, m)`` graph with the given average degree.

    Mirrors the paper's ``ERD`` instance (uniform random topology).  We use
    the ``G(n, m)`` variant with ``m = n * avg_degree / 2`` for exact size
    control.
    """
    _ensure_positive("n", n)
    if avg_degree <= 0 or avg_degree >= n:
        raise DatasetError(f"average degree {avg_degree} infeasible for n={n}")
    rng = random.Random(seed)
    target_m = max(n - 1, round(n * avg_degree / 2))
    g = Graph(n, unweighted=True)
    edges: set[tuple[int, int]] = set()
    max_m = n * (n - 1) // 2
    if target_m > max_m:
        raise DatasetError(f"requested {target_m} edges but K_{n} has only {max_m}")
    while len(edges) < target_m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        e = (u, v) if u < v else (v, u)
        if e not in edges:
            edges.add(e)
            g.add_edge(*e, 1.0)
    connect_components(g, seed=rng.randrange(1 << 30))
    return g


def barabasi_albert(n: int, k: int, seed: int | None = None) -> Graph:
    """Barabási–Albert preferential-attachment graph (power-law degrees).

    Each new vertex attaches to ``k`` distinct existing vertices chosen
    proportionally to degree.  Matches the paper's U-BAR/W-BAR synthetic
    instances and acts as the stand-in for its social/web graphs.
    """
    _ensure_positive("n", n)
    _ensure_positive("k", k)
    if n <= k:
        raise DatasetError(f"need n > k, got n={n}, k={k}")
    rng = random.Random(seed)
    g = Graph(n, unweighted=True)
    # Seed clique on k+1 vertices so the first attachments have targets.
    repeated: list[int] = []  # vertex repeated once per incident edge
    for u in range(k + 1):
        for v in range(u + 1, k + 1):
            g.add_edge(u, v, 1.0)
            repeated.append(u)
            repeated.append(v)
    for u in range(k + 1, n):
        targets: set[int] = set()
        while len(targets) < k:
            targets.add(rng.choice(repeated))
        for v in targets:
            g.add_edge(u, v, 1.0)
            repeated.append(u)
            repeated.append(v)
    return g


def road_grid(
    rows: int,
    cols: int,
    diagonal_prob: float = 0.08,
    removal_prob: float = 0.05,
    seed: int | None = None,
) -> Graph:
    """Road-network stand-in: perturbed grid with occasional diagonals.

    Real road networks (LUX, NW, NE, ITA, DEU, USA in the paper) are almost
    planar with average degree ~2.5 and large diameter.  A grid with a few
    random removals and diagonal shortcuts reproduces exactly that profile.
    """
    _ensure_positive("rows", rows)
    _ensure_positive("cols", cols)
    if not 0 <= removal_prob < 1:
        raise DatasetError(f"removal_prob must be in [0, 1), got {removal_prob}")
    rng = random.Random(seed)
    n = rows * cols
    g = Graph(n, unweighted=True)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols and rng.random() >= removal_prob:
                g.add_edge(vid(r, c), vid(r, c + 1), 1.0)
            if r + 1 < rows and rng.random() >= removal_prob:
                g.add_edge(vid(r, c), vid(r + 1, c), 1.0)
            if (
                r + 1 < rows
                and c + 1 < cols
                and rng.random() < diagonal_prob
            ):
                g.add_edge(vid(r, c), vid(r + 1, c + 1), 1.0)
    connect_components(g, seed=rng.randrange(1 << 30))
    return g


def community_graph(
    n: int,
    communities: int,
    k_intra: int,
    inter_fraction: float = 0.04,
    seed: int | None = None,
) -> Graph:
    """Power-law communities joined by sparse random bridges.

    Real social and web graphs combine heavy-tailed degrees with community
    structure; plain preferential attachment reproduces only the former,
    which makes every hub reachable from everywhere by many disjoint paths
    — pathological for landmark-cover locality.  This generator runs
    Barabási–Albert-style attachment *inside* each of ``communities``
    blocks and adds ``n * inter_fraction`` random inter-community bridges,
    restoring the locality that lets landmarks shadow one another.
    """
    _ensure_positive("n", n)
    _ensure_positive("communities", communities)
    _ensure_positive("k_intra", k_intra)
    if not 0 <= inter_fraction < 1:
        raise DatasetError(f"inter_fraction must be in [0, 1), got {inter_fraction}")
    size = n // communities
    if size <= k_intra:
        raise DatasetError(
            f"community size {size} must exceed k_intra={k_intra}"
        )
    rng = random.Random(seed)
    g = Graph(n, unweighted=True)

    for c in range(communities):
        lo = c * size
        hi = n if c == communities - 1 else lo + size
        members = list(range(lo, hi))
        repeated: list[int] = []
        seed_k = min(k_intra + 1, len(members))
        for i in range(seed_k):
            for j in range(i + 1, seed_k):
                g.add_edge(members[i], members[j], 1.0)
                repeated.append(members[i])
                repeated.append(members[j])
        for idx in range(seed_k, len(members)):
            u = members[idx]
            targets: set[int] = set()
            while len(targets) < min(k_intra, idx):
                targets.add(rng.choice(repeated))
            for v in targets:
                g.add_edge(u, v, 1.0)
                repeated.append(u)
                repeated.append(v)

    bridges = round(n * inter_fraction)
    added = 0
    attempts = 0
    while added < bridges and attempts < 50 * bridges + 100:
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if (
            u != v
            and min(u // size, communities - 1) != min(v // size, communities - 1)
            and not g.has_edge(u, v)
        ):
            g.add_edge(u, v, 1.0)
            added += 1
    connect_components(g, seed=rng.randrange(1 << 30))
    return g


def random_bipartite(
    left: int, right: int, avg_degree: float, seed: int | None = None
) -> Graph:
    """Bipartite ratings-style graph (stand-in for the paper's YAH).

    Vertices ``0..left-1`` form one side, ``left..left+right-1`` the other;
    edges only cross sides, like user–item rating graphs.
    """
    _ensure_positive("left", left)
    _ensure_positive("right", right)
    n = left + right
    if avg_degree <= 0:
        raise DatasetError(f"average degree must be positive, got {avg_degree}")
    rng = random.Random(seed)
    target_m = max(n - 1, round(n * avg_degree / 2))
    max_m = left * right
    if target_m > max_m:
        raise DatasetError(f"requested {target_m} edges but K_{left},{right} has {max_m}")
    g = Graph(n, unweighted=True)
    edges: set[tuple[int, int]] = set()
    while len(edges) < target_m:
        u = rng.randrange(left)
        v = left + rng.randrange(right)
        if (u, v) not in edges:
            edges.add((u, v))
            g.add_edge(u, v, 1.0)
    connect_components(g, seed=rng.randrange(1 << 30))
    return g
