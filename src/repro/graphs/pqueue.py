"""Priority queues for the Dijkstra-style searches of the paper.

Two implementations are provided:

* :class:`AddressableHeap` — a binary min-heap with ``decrease_key``,
  mirroring the interface the paper's pseudocode assumes
  (``enqueue`` / ``decreaseKey`` / ``dequeueMin``).
* :class:`LazyHeap` — the classic ``heapq`` lazy-deletion pattern, which has
  better constants in CPython and is what the hot search loops use.

Both are drop-in interchangeable for the algorithms in :mod:`repro.core`; the
test suite exercises them against each other.
"""

from __future__ import annotations

import heapq
from typing import Hashable

from ..obs import OBS

__all__ = ["AddressableHeap", "LazyHeap"]


class AddressableHeap:
    """Binary min-heap over hashable items with ``decrease_key`` support.

    Each item may appear at most once.  All operations are ``O(log n)``
    except :meth:`peek` and membership, which are ``O(1)``.

    Examples
    --------
    >>> q = AddressableHeap()
    >>> q.enqueue("a", 5.0)
    >>> q.enqueue("b", 3.0)
    >>> q.decrease_key("a", 1.0)
    >>> q.dequeue_min()
    ('a', 1.0)
    """

    __slots__ = ("_heap", "_pos")

    def __init__(self):
        self._heap: list[tuple[float, Hashable]] = []
        self._pos: dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._pos

    def priority(self, item: Hashable) -> float:
        """Current priority of ``item`` (must be present)."""
        return self._heap[self._pos[item]][0]

    def enqueue(self, item: Hashable, priority: float) -> None:
        """Insert ``item`` with ``priority``; the item must be absent."""
        if item in self._pos:
            raise KeyError(f"item {item!r} already in heap")
        if OBS.enabled:
            OBS.registry.counter("pqueue.enqueues").inc()
        self._heap.append((priority, item))
        self._pos[item] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def decrease_key(self, item: Hashable, priority: float) -> None:
        """Lower the priority of ``item``; raising it is rejected."""
        i = self._pos[item]
        old, _ = self._heap[i]
        if priority > old:
            raise ValueError(f"decrease_key would increase priority: {old} -> {priority}")
        if OBS.enabled:
            OBS.registry.counter("pqueue.decrease_keys").inc()
        self._heap[i] = (priority, item)
        self._sift_up(i)

    def enqueue_or_decrease(self, item: Hashable, priority: float) -> None:
        """Insert, or decrease the key if the new priority is lower."""
        if item in self._pos:
            if priority < self.priority(item):
                self.decrease_key(item, priority)
        else:
            self.enqueue(item, priority)

    def peek(self) -> tuple[Hashable, float]:
        """The minimum ``(item, priority)`` without removing it."""
        priority, item = self._heap[0]
        return item, priority

    def dequeue_min(self) -> tuple[Hashable, float]:
        """Remove and return the minimum ``(item, priority)``."""
        if OBS.enabled:
            OBS.registry.counter("pqueue.dequeues").inc()
        priority, item = self._heap[0]
        last = self._heap.pop()
        del self._pos[item]
        if self._heap:
            self._heap[0] = last
            self._pos[last[1]] = 0
            self._sift_down(0)
        return item, priority

    def _sift_up(self, i: int) -> None:
        heap, pos = self._heap, self._pos
        entry = heap[i]
        while i > 0:
            parent = (i - 1) >> 1
            if heap[parent][0] <= entry[0]:
                break
            heap[i] = heap[parent]
            pos[heap[i][1]] = i
            i = parent
        heap[i] = entry
        pos[entry[1]] = i

    def _sift_down(self, i: int) -> None:
        heap, pos = self._heap, self._pos
        size = len(heap)
        entry = heap[i]
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            child = left
            right = left + 1
            if right < size and heap[right][0] < heap[left][0]:
                child = right
            if heap[child][0] >= entry[0]:
                break
            heap[i] = heap[child]
            pos[heap[i][1]] = i
            i = child
        heap[i] = entry
        pos[entry[1]] = i


class LazyHeap:
    """``heapq``-based min-queue with lazy decrease-key.

    ``enqueue_or_decrease`` simply pushes a new entry; stale entries are
    skipped on :meth:`dequeue_min` by comparing against the recorded best
    priority.  Matches the semantics of :class:`AddressableHeap` for
    Dijkstra-style use (monotone settle order).
    """

    __slots__ = ("_heap", "_best")

    def __init__(self):
        self._heap: list[tuple[float, Hashable]] = []
        self._best: dict[Hashable, float] = {}

    def __bool__(self) -> bool:
        # May report True with only stale entries; dequeue_min resolves it.
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def enqueue(self, item: Hashable, priority: float) -> None:
        """Insert ``item`` (duplicates allowed; smaller priority wins)."""
        self.enqueue_or_decrease(item, priority)

    def enqueue_or_decrease(self, item: Hashable, priority: float) -> None:
        """Push unless an entry with smaller-or-equal priority exists."""
        best = self._best.get(item)
        if best is not None and best <= priority:
            return
        if OBS.enabled:
            OBS.registry.counter("pqueue.enqueues").inc()
        self._best[item] = priority
        heapq.heappush(self._heap, (priority, item))

    def dequeue_min(self):
        """Pop the minimum live ``(item, priority)``; ``None`` if empty."""
        heap = self._heap
        best = self._best
        while heap:
            priority, item = heapq.heappop(heap)
            if best.get(item) == priority:
                if OBS.enabled:
                    OBS.registry.counter("pqueue.dequeues").inc()
                del best[item]
                return item, priority
        return None
