"""Naive baselines for landmark-constrained distances.

The paper (§4, G2) notes these were evaluated in prior work [13] and found
significantly slower/less scalable than HCL; they are provided here both
for validation (they are trivially correct) and so the benchmark harness
can exhibit the same ordering.

* :func:`multi_dijkstra_landmark_constrained` — two single-source searches
  per query, no preprocessing at all.
* :class:`DistanceMatrixOracle` — precomputes a full landmark-to-all
  distance matrix; O(|R|) queries but O(|R| (m + n log n)) rebuild cost on
  *every* landmark change, the worst possible dynamic behaviour.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..errors import LandmarkError, VertexError
from ..graphs.graph import Graph
from ..graphs.traversal import single_source_distances

INF = math.inf

__all__ = ["multi_dijkstra_landmark_constrained", "DistanceMatrixOracle"]


def multi_dijkstra_landmark_constrained(
    graph: Graph, landmarks: Iterable[int], s: int, t: int
) -> float:
    """``min_r d(s, r) + d(r, t)`` from two fresh single-source searches."""
    lmks = list(landmarks)
    if not lmks:
        return INF
    dist_s = single_source_distances(graph, s)
    dist_t = single_source_distances(graph, t)
    return min(dist_s[r] + dist_t[r] for r in lmks)


class DistanceMatrixOracle:
    """Full landmark distance matrix; fast queries, pathological updates."""

    def __init__(self, graph: Graph, landmarks: Iterable[int] = ()):
        self.graph = graph
        self._rows: dict[int, list[float]] = {}
        for r in landmarks:
            self.add_landmark(r)

    @property
    def landmarks(self) -> set[int]:
        """Current landmark set."""
        return set(self._rows)

    def add_landmark(self, r: int) -> None:
        """One full single-source search to materialize the new row."""
        if not 0 <= r < self.graph.n:
            raise VertexError(f"landmark {r} out of range [0, {self.graph.n})")
        if r in self._rows:
            raise LandmarkError(f"vertex {r} is already a landmark")
        self._rows[r] = single_source_distances(self.graph, r)

    def remove_landmark(self, r: int) -> None:
        """Drop the row of ``r``."""
        if r not in self._rows:
            raise LandmarkError(f"vertex {r} is not a landmark")
        del self._rows[r]

    def landmark_constrained_distance(self, s: int, t: int) -> float:
        """``min_r row_r[s] + row_r[t]`` — O(|R|) per query."""
        if not self._rows:
            return INF
        return min(row[s] + row[t] for row in self._rows.values())

    def memory_entries(self) -> int:
        """Stored distance cells (|R| * n): the oracle's space cost."""
        return len(self._rows) * self.graph.n
