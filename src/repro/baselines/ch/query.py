"""CH queries: bidirectional point-to-point and upward search spaces.

On an undirected graph the CH property states that for every pair ``(s, t)``
some shortest path can be decomposed into an *upward* ``s``-prefix and an
*upward* ``t``-suffix meeting at a maximum-rank vertex.  Point-to-point
distance is therefore the minimum, over meeting vertices ``v``, of
``up_s(v) + up_t(v)`` where ``up_x`` is the upward-Dijkstra distance map of
``x`` — the *search space* of ``x``.  Search spaces double as the bucket
sides of the many-to-many joins CH-GSP performs.
"""

from __future__ import annotations

import heapq
import math

from .contract import ContractionHierarchy

INF = math.inf

__all__ = ["upward_search_space", "ch_distance", "join_search_spaces"]


def upward_search_space(ch: ContractionHierarchy, source: int) -> dict[int, float]:
    """Upward-Dijkstra distance map of ``source``.

    Settles only edges leading to higher-ranked nodes; the returned dict
    maps every reached node to its upward distance (an upper bound on the
    true distance, exact at the meeting points that matter).
    """
    dist: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    upward = ch.upward
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, INF):
            continue
        for v, w in upward[u]:
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def join_search_spaces(a: dict[int, float], b: dict[int, float]) -> float:
    """Minimum ``a[v] + b[v]`` over shared keys (the CH meet rule)."""
    if len(a) > len(b):
        a, b = b, a
    best = INF
    get = b.get
    for v, da in a.items():
        db = get(v)
        if db is not None and da + db < best:
            best = da + db
    return best


def ch_distance(ch: ContractionHierarchy, s: int, t: int) -> float:
    """Exact ``s``–``t`` distance via bidirectional upward search.

    A straightforward full-space meet: correct for all pairs, including
    disconnected ones (returns ``inf``).
    """
    if s == t:
        return 0.0
    return join_search_spaces(
        upward_search_space(ch, s), upward_search_space(ch, t)
    )
