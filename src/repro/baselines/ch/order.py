"""Node-ordering heuristics for Contraction Hierarchies.

The contraction order drives CH quality.  We implement the standard lazy
priority scheme of Geisberger et al.: a node's priority combines its *edge
difference* (shortcuts a contraction would add minus edges it removes) with
the number of already-contracted neighbors (spatial-diffusion term).
Priorities are re-evaluated lazily — a node popped from the queue is
re-scored and contracted only if it is still minimal.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NodePriority", "priority_score"]


@dataclass(frozen=True)
class NodePriority:
    """Components of a node's contraction priority."""

    edge_difference: int
    contracted_neighbors: int
    level: int

    @property
    def score(self) -> float:
        """Weighted combination; lower contracts earlier."""
        return (
            4.0 * self.edge_difference
            + 2.0 * self.contracted_neighbors
            + 1.0 * self.level
        )


def priority_score(
    shortcuts_needed: int, degree: int, contracted_neighbors: int, level: int
) -> float:
    """Score from raw counters (avoids allocating :class:`NodePriority`)."""
    return 4.0 * (shortcuts_needed - degree) + 2.0 * contracted_neighbors + 1.0 * level
