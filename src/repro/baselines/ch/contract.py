"""Contraction Hierarchy construction.

Builds a CH over an undirected positively-weighted graph: nodes are
contracted in lazy edge-difference order; every contraction preserves
pairwise distances among the remaining nodes by inserting shortcut edges
whenever the limited *witness search* fails to certify an alternative path.

Witness searches are budgeted (settled-node cap); an exhausted budget
conservatively inserts the shortcut, so correctness never depends on the
budget — only hierarchy sparseness does.  This is the standard engineering
of Geisberger et al. and what RoutingKit (the paper's CH substrate) does.

The output :class:`ContractionHierarchy` stores, per node, its rank and its
*upward* adjacency (edges to higher-ranked nodes only), which is all the
bidirectional CH query needs on undirected graphs.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from ...errors import GraphError
from ...graphs.graph import Graph
from .order import priority_score

INF = math.inf

__all__ = ["ContractionHierarchy", "build_contraction_hierarchy"]


@dataclass
class ContractionHierarchy:
    """A built hierarchy: ranks plus upward adjacency.

    Attributes
    ----------
    n:
        Number of nodes.
    rank:
        ``rank[v]`` is the contraction position of ``v`` (0 = first).
    upward:
        ``upward[v]`` lists ``(u, w)`` with ``rank[u] > rank[v]``; includes
        both original edges and shortcuts.
    shortcuts:
        Number of shortcut edges inserted during construction.
    """

    n: int
    rank: list[int]
    upward: list[list[tuple[int, float]]]
    shortcuts: int = 0
    order: list[int] = field(default_factory=list)


def _witness_exists(
    overlay: list[dict[int, float]],
    source: int,
    target: int,
    skip: int,
    bound: float,
    budget: int,
) -> bool:
    """Limited Dijkstra: is there an s-t path <= bound avoiding ``skip``?"""
    dist = {source: 0.0}
    heap = [(0.0, source)]
    settled = 0
    while heap and settled < budget:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, INF):
            continue
        if u == target:
            return True
        if d > bound:
            return False
        settled += 1
        for v, w in overlay[u].items():
            if v == skip:
                continue
            nd = d + w
            if nd <= bound and nd < dist.get(v, INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist.get(target, INF) <= bound


def _shortcuts_for(
    overlay: list[dict[int, float]], v: int, budget: int
) -> list[tuple[int, int, float]]:
    """Shortcuts a contraction of ``v`` would require right now."""
    neighbors = sorted(overlay[v].items())
    needed: list[tuple[int, int, float]] = []
    for i, (u, wu) in enumerate(neighbors):
        for x, wx in neighbors[i + 1 :]:
            via = wu + wx
            if not _witness_exists(overlay, u, x, v, via, budget):
                needed.append((u, x, via))
    return needed


def build_contraction_hierarchy(
    graph: Graph, witness_budget: int = 50
) -> ContractionHierarchy:
    """Build a CH over ``graph``.

    Parameters
    ----------
    graph:
        Undirected graph with positive weights.
    witness_budget:
        Settled-node cap per witness search. Larger values yield fewer
        shortcuts at higher preprocessing cost; correctness is unaffected.

    Returns
    -------
    ContractionHierarchy
    """
    if witness_budget < 1:
        raise GraphError(f"witness budget must be >= 1, got {witness_budget}")
    n = graph.n
    # Overlay adjacency: current remaining graph plus shortcuts, with
    # parallel edges collapsed to minimum weight.
    overlay: list[dict[int, float]] = [{} for _ in range(n)]
    for u, v, w in graph.edges():
        if w < overlay[u].get(v, INF):
            overlay[u][v] = w
            overlay[v][u] = w

    rank = [-1] * n
    upward_raw: list[dict[int, float]] = [{} for _ in range(n)]
    contracted_neighbors = [0] * n
    level = [0] * n
    shortcut_count = 0
    order: list[int] = []

    def evaluate(v: int) -> tuple[float, list[tuple[int, int, float]]]:
        needed = _shortcuts_for(overlay, v, witness_budget)
        score = priority_score(
            len(needed), len(overlay[v]), contracted_neighbors[v], level[v]
        )
        return score, needed

    heap = [(evaluate(v)[0], v) for v in range(n)]
    heapq.heapify(heap)

    position = 0
    while heap:
        _, v = heapq.heappop(heap)
        if rank[v] != -1:
            continue
        # Lazy re-evaluation: contract only if still (approximately) minimal.
        fresh, needed = evaluate(v)
        if heap and fresh > heap[0][0]:
            heapq.heappush(heap, (fresh, v))
            continue

        rank[v] = position
        order.append(v)
        position += 1

        # Record upward edges of v: every overlay neighbor outranks v now.
        for u, w in overlay[v].items():
            upward_raw[v][u] = min(w, upward_raw[v].get(u, INF))
            contracted_neighbors[u] += 1
            if level[v] + 1 > level[u]:
                level[u] = level[v] + 1
            del overlay[u][v]
        overlay[v].clear()

        # Insert the shortcuts into the remaining overlay.
        for a, b, w in needed:
            if w < overlay[a].get(b, INF):
                overlay[a][b] = w
                overlay[b][a] = w
                shortcut_count += 1

    upward = [sorted(adj.items()) for adj in upward_raw]
    return ContractionHierarchy(
        n=n, rank=rank, upward=upward, shortcuts=shortcut_count, order=order
    )
