"""CH-GSP — landmark-constrained distances over Contraction Hierarchies.

Adaptation of the generalized shortest-path framework of Rice & Tsotras
(ICDE 2013) to the paper's setting: landmarks form a single category, and a
query asks for the cheapest ``s -> r -> t`` route over any landmark ``r``.

Design (mirrors the properties the paper's comparison relies on):

* **Landmark-independent preprocessing.**  The CH is built once from the
  graph alone; landmark insertions/removals never touch it.  This is the
  structural advantage GSP-style methods have in dynamic-landmark settings
  and why the paper includes them as the natural competitor.
* **Query cost grows with |R| and the graph.**  A query performs two upward
  searches (from ``s`` and ``t``) and joins them against each landmark's
  cached upward search space (a classic CH many-to-many bucket join):
  ``d(s,r) = meet(space(s), space(r))``, ``d(r,t) = meet(space(r),
  space(t))``, minimized over ``r``.  Caching the landmark spaces is a
  *favourable* engineering choice for CH-GSP — without it every query would
  pay |R| extra upward searches — so the DYN-HCL speedups measured against
  this implementation are conservative.

Landmark updates only maintain the cache: one upward search on insert, a
dict delete on removal.
"""

from __future__ import annotations

import math
from typing import Iterable

from ...errors import LandmarkError, VertexError
from ...graphs.graph import Graph
from .contract import ContractionHierarchy, build_contraction_hierarchy
from .query import ch_distance, join_search_spaces, upward_search_space

INF = math.inf

__all__ = ["CHGSP"]


class CHGSP:
    """Generalized-shortest-path engine for dynamic landmark sets.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> g = Graph(4)
    >>> for u, v in [(0, 1), (1, 2), (2, 3)]:
    ...     g.add_edge(u, v, 1.0)
    >>> engine = CHGSP(g, landmarks=[1])
    >>> engine.landmark_constrained_distance(0, 3)
    3.0
    """

    def __init__(
        self,
        graph: Graph,
        landmarks: Iterable[int] = (),
        witness_budget: int = 50,
    ):
        self.graph = graph
        self.ch: ContractionHierarchy = build_contraction_hierarchy(
            graph, witness_budget=witness_budget
        )
        self._spaces: dict[int, dict[int, float]] = {}
        for r in landmarks:
            self.add_landmark(r)

    # ------------------------------------------------------------------
    # Landmark maintenance (cheap by design)
    # ------------------------------------------------------------------
    @property
    def landmarks(self) -> set[int]:
        """Current landmark set."""
        return set(self._spaces)

    def add_landmark(self, r: int) -> None:
        """Register ``r``: one upward search to cache its space."""
        if not 0 <= r < self.graph.n:
            raise VertexError(f"landmark {r} out of range [0, {self.graph.n})")
        if r in self._spaces:
            raise LandmarkError(f"vertex {r} is already a landmark")
        self._spaces[r] = upward_search_space(self.ch, r)

    def remove_landmark(self, r: int) -> None:
        """Deregister ``r`` (drops the cached space)."""
        if r not in self._spaces:
            raise LandmarkError(f"vertex {r} is not a landmark")
        del self._spaces[r]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, s: int, t: int) -> float:
        """Plain point-to-point distance (CH query), for validation."""
        return ch_distance(self.ch, s, t)

    def landmark_constrained_distance(self, s: int, t: int) -> float:
        """``min_r d(s, r) + d(r, t)`` over the current landmarks.

        Semantically identical to the HCL ``QUERY`` (landmark-constrained
        distance), computed GSP-style from the hierarchy at query time.
        """
        if not self._spaces:
            return INF
        space_s = upward_search_space(self.ch, s)
        space_t = upward_search_space(self.ch, t)
        best = INF
        for r, space_r in self._spaces.items():
            if r == s or r == t:
                # d(s,r) or d(r,t) is 0; a single join decides the value.
                other = space_t if r == s else space_s
                d = join_search_spaces(space_r, other)
            else:
                d = join_search_spaces(space_s, space_r) + join_search_spaces(
                    space_r, space_t
                )
            if d < best:
                best = d
        return best
