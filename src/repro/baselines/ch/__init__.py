"""Contraction Hierarchies and the CH-GSP competitor."""

from .contract import ContractionHierarchy, build_contraction_hierarchy
from .gsp import CHGSP
from .query import ch_distance, join_search_spaces, upward_search_space

__all__ = [
    "ContractionHierarchy",
    "build_contraction_hierarchy",
    "ch_distance",
    "upward_search_space",
    "join_search_spaces",
    "CHGSP",
]
