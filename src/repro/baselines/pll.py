"""Pruned Landmark Labeling (PLL) — the 2-hop-cover ancestor of HCL.

Akiba, Iwata & Yoshida (SIGMOD 2013).  HCL is introduced by Farhan et al.
as a customization of this scheme that trades a bounded amount of query
work for dramatically smaller labels; having a faithful PLL next to HCL
lets the repository demonstrate that trade-off (see
``benchmarks/bench_pll_vs_hcl.py``).

Construction processes vertices in a fixed order (degree-descending by
default).  For each root ``v_k``, a pruned Dijkstra/BFS adds ``(v_k, δ)``
to ``L(u)`` unless the 2-hop query over the labels built so far already
certifies ``dist(v_k, u) <= δ`` — the classic pruning rule that makes the
index both correct and minimal for the chosen order.

Unlike HCL, *every* vertex gets labels and queries are exact with no graph
search: ``d(s, t) = min_h L(s)[h] + L(t)[h]``.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Sequence

from ..graphs.graph import Graph

INF = math.inf

__all__ = ["PrunedLandmarkLabeling"]


class PrunedLandmarkLabeling:
    """A 2-hop-cover distance index with PLL construction.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> g = Graph(4)
    >>> for u, v in [(0, 1), (1, 2), (2, 3)]:
    ...     g.add_edge(u, v, 1.0)
    >>> pll = PrunedLandmarkLabeling(g)
    >>> pll.distance(0, 3)
    3.0
    """

    def __init__(self, graph: Graph, order: Sequence[int] | None = None):
        self.graph = graph
        if order is None:
            order = sorted(
                graph.vertices(), key=lambda v: (-graph.degree(v), v)
            )
        else:
            if sorted(order) != list(range(graph.n)):
                raise ValueError("order must be a permutation of the vertices")
        self.order = list(order)
        self._labels: list[dict[int, float]] = [{} for _ in range(graph.n)]
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _query_upper_bound(self, s: int, t: int) -> float:
        ls, lt = self._labels[s], self._labels[t]
        if len(ls) > len(lt):
            ls, lt = lt, ls
        best = INF
        get = lt.get
        for h, dh in ls.items():
            other = get(h)
            if other is not None and dh + other < best:
                best = dh + other
        return best

    def _build(self) -> None:
        graph = self.graph
        labels = self._labels
        for root in self.order:
            if graph.unweighted:
                self._pruned_bfs(root)
            else:
                self._pruned_dijkstra(root)
            labels[root][root] = 0.0

    def _pruned_dijkstra(self, root: int) -> None:
        graph = self.graph
        labels = self._labels
        dist: dict[int, float] = {root: 0.0}
        heap: list[tuple[float, int]] = [(0.0, root)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, INF):
                continue
            if u != root:
                if self._query_upper_bound(root, u) <= d:
                    continue  # already covered by earlier roots: prune
                labels[u][root] = d
            for v, w in graph.neighbors(u):
                nd = d + w
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))

    def _pruned_bfs(self, root: int) -> None:
        graph = self.graph
        labels = self._labels
        dist: dict[int, float] = {root: 0.0}
        queue: deque[int] = deque([root])
        while queue:
            u = queue.popleft()
            d = dist[u]
            if u != root:
                if self._query_upper_bound(root, u) <= d:
                    continue
                labels[u][root] = d
            nd = d + 1.0
            for v, _ in graph.neighbors(u):
                if v not in dist:
                    dist[v] = nd
                    queue.append(v)
    # ------------------------------------------------------------------
    # Queries / stats
    # ------------------------------------------------------------------
    def distance(self, s: int, t: int) -> float:
        """Exact distance by 2-hop label join (no graph traversal)."""
        if s == t:
            return 0.0
        return self._query_upper_bound(s, t)

    def label(self, v: int) -> dict[int, float]:
        """The 2-hop label of ``v`` (hub -> distance; read-only view)."""
        return self._labels[v]

    def total_entries(self) -> int:
        """Index size in label entries (compare against HCL's)."""
        return sum(len(lbl) for lbl in self._labels)

    def average_label_size(self) -> float:
        """Mean entries per vertex."""
        return self.total_entries() / self.graph.n if self.graph.n else 0.0
