"""Competitor methods: Contraction-Hierarchy GSP and naive baselines."""

from .ch import CHGSP, ContractionHierarchy, build_contraction_hierarchy, ch_distance
from .naive import DistanceMatrixOracle, multi_dijkstra_landmark_constrained
from .pll import PrunedLandmarkLabeling

__all__ = [
    "CHGSP",
    "ContractionHierarchy",
    "build_contraction_hierarchy",
    "ch_distance",
    "DistanceMatrixOracle",
    "multi_dijkstra_landmark_constrained",
    "PrunedLandmarkLabeling",
]
