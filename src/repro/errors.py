"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can use a single ``except`` clause at API boundaries while still
being able to discriminate failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Structural problem with a graph (bad vertex id, bad weight, ...)."""


class VertexError(GraphError):
    """A vertex id is out of range or otherwise invalid."""


class EdgeError(GraphError):
    """An edge is invalid: self-loop where forbidden, missing, duplicate."""


class WeightError(GraphError):
    """An edge weight is not a positive finite number."""


class IndexStateError(ReproError):
    """An HCL index operation was applied in an invalid state.

    Examples: upgrading a vertex that is already a landmark, downgrading a
    vertex that is not a landmark, querying an index over the wrong graph.
    """


class LandmarkError(IndexStateError):
    """A landmark argument is invalid for the requested operation."""


class CoverPropertyError(ReproError):
    """An index failed the highway-cover property validation."""


class DatasetError(ReproError):
    """A workload/dataset specification could not be realized."""


class ParseError(ReproError):
    """A graph file could not be parsed."""


class GraphFormatError(ParseError):
    """A graph input file is malformed at a specific line.

    Carries the 1-based ``line`` number (and the offending ``text`` when
    available) so operators can fix the input instead of spelunking a
    raw ``ValueError`` out of ``int()``/``float()``.
    """

    def __init__(self, message: str, line: int | None = None, text: str | None = None):
        super().__init__(message)
        self.line = line
        self.text = text


class TransactionError(ReproError):
    """A transactional index mutation failed and was rolled back.

    Raised after the undo journal has restored the index to its
    pre-operation state; the original exception is chained as
    ``__cause__``.
    """


class CheckpointError(ParseError):
    """A checkpoint file is corrupt, truncated, or otherwise unreadable.

    Subclasses :class:`ParseError` so pre-existing ``except ParseError``
    handlers around index loading keep working.
    """


class RecoveryError(ReproError):
    """Crash recovery could not reconstruct a consistent index.

    Examples: a committed WAL record does not apply to the checkpointed
    index (add of an existing landmark), or the WAL disagrees with the
    checkpoint's recorded sequence number.
    """


class WALError(ReproError):
    """A write-ahead log could not be opened or appended to."""


class RequestError(ReproError):
    """A service request carries invalid parameters (bad worker count, ...)."""


class DeadlineExceeded(ReproError):
    """A budgeted operation ran out of wall clock or step budget.

    Queries only raise this in ``strict`` mode — by default they return
    the anytime landmark upper bound as a
    :class:`~repro.budget.DegradedResult` instead.  Budgeted mutations
    always raise it (there is no partial mutation to return); the
    transaction machinery has already rolled the index back by the time
    the exception reaches the caller, so the operation is safely
    retriable with a larger budget.
    """


class Overloaded(ReproError):
    """The service shed this request at admission time.

    Raised before any work happens when the bounded in-flight budget is
    full.  ``retriable`` is always ``True``: nothing about the request
    was wrong, the deployment was momentarily saturated.
    """

    retriable = True


class CircuitOpenError(ReproError):
    """A mutation was rejected because the service's circuit breaker is open.

    After ``K`` consecutive infrastructure failures
    (:class:`TransactionError` / :class:`WALError`) the service stops
    attempting mutations and serves queries from the last-good index.
    ``retriable`` is ``True``; ``retry_after`` (seconds) hints when the
    breaker will next admit a half-open probe.
    """

    retriable = True

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class ShardUnavailable(ReproError):
    """No replica of a shard could serve an RPC within the deadline.

    Raised by the scatter-gather coordinator after retries and replica
    failover are exhausted for one shard.  ``retriable`` is ``True``:
    the coordinator restarts dead workers from the pinned epoch, so a
    later attempt may find the shard healthy again.  Batch queries
    normally absorb this into per-pair
    :class:`~repro.budget.DegradedResult` answers instead of raising.
    """

    retriable = True

    def __init__(self, message: str, shard: int | None = None):
        super().__init__(message)
        self.shard = shard


class PlanIntegrityError(ReproError):
    """A shared-memory plan segment failed its CRC32 integrity check.

    The segment's per-array checksums (written at creation, mirroring the
    WAL record format) did not match its contents at attach or re-verify
    time — a flipped byte anywhere in the label arrays would otherwise
    become a silently wrong distance.  The segment is quarantined (never
    attached again by this process) and callers fall back to the pickle
    transport; the owner republishes a fresh segment from the canonical
    arrays, which live in ordinary heap memory and are unaffected.
    ``segment`` names the offending shared-memory segment when known.
    """

    retriable = True

    def __init__(self, message: str, segment: str | None = None):
        super().__init__(message)
        self.segment = segment

    def __reduce__(self):
        # Keep ``segment`` across process boundaries: a pool worker's
        # attach failure must tell the parent *which* segment to
        # quarantine, and default exception pickling replays only
        # ``args``.
        return (type(self), (self.args[0], self.segment))


class AuditError(ReproError):
    """The background auditor could not repair a corrupted label row.

    The offending landmark stays quarantined (reported via
    ``HCLService.health()``) and the repair is retried on the next tick.
    """


class ServiceError(ReproError):
    """A service request failed with an unexpected (non-library) error.

    Wraps exceptions that are not :class:`ReproError` so the service
    boundary only ever raises the library hierarchy; the original
    exception is chained as ``__cause__``.
    """
