"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can use a single ``except`` clause at API boundaries while still
being able to discriminate failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Structural problem with a graph (bad vertex id, bad weight, ...)."""


class VertexError(GraphError):
    """A vertex id is out of range or otherwise invalid."""


class EdgeError(GraphError):
    """An edge is invalid: self-loop where forbidden, missing, duplicate."""


class WeightError(GraphError):
    """An edge weight is not a positive finite number."""


class IndexStateError(ReproError):
    """An HCL index operation was applied in an invalid state.

    Examples: upgrading a vertex that is already a landmark, downgrading a
    vertex that is not a landmark, querying an index over the wrong graph.
    """


class LandmarkError(IndexStateError):
    """A landmark argument is invalid for the requested operation."""


class CoverPropertyError(ReproError):
    """An index failed the highway-cover property validation."""


class DatasetError(ReproError):
    """A workload/dataset specification could not be realized."""


class ParseError(ReproError):
    """A graph file could not be parsed."""


class TransactionError(ReproError):
    """A transactional index mutation failed and was rolled back.

    Raised after the undo journal has restored the index to its
    pre-operation state; the original exception is chained as
    ``__cause__``.
    """


class CheckpointError(ParseError):
    """A checkpoint file is corrupt, truncated, or otherwise unreadable.

    Subclasses :class:`ParseError` so pre-existing ``except ParseError``
    handlers around index loading keep working.
    """


class RecoveryError(ReproError):
    """Crash recovery could not reconstruct a consistent index.

    Examples: a committed WAL record does not apply to the checkpointed
    index (add of an existing landmark), or the WAL disagrees with the
    checkpoint's recorded sequence number.
    """


class WALError(ReproError):
    """A write-ahead log could not be opened or appended to."""


class RequestError(ReproError):
    """A service request carries invalid parameters (bad worker count, ...)."""


class ServiceError(ReproError):
    """A service request failed with an unexpected (non-library) error.

    Wraps exceptions that are not :class:`ReproError` so the service
    boundary only ever raises the library hierarchy; the original
    exception is chained as ``__cause__``.
    """
