"""Circuit breaker isolating index mutations from infrastructure faults.

A deployment serving queries while applying landmark reconfigurations has
an asymmetric failure story: a *query* failure is one bad answer, but a
*mutation* failure (:class:`~repro.errors.TransactionError` /
:class:`~repro.errors.WALError`) means the write path — the undo journal,
the WAL device — is unhealthy, and retrying in a tight loop just burns the
same fault again while churning rollbacks.  :class:`CircuitBreaker`
implements the classic three-state machine around that write path:

* **closed** — normal operation; consecutive infrastructure failures are
  counted and any success resets the count.
* **open** — after ``threshold`` consecutive failures.  Mutations are
  rejected up front with :class:`~repro.errors.CircuitOpenError` (queries
  are unaffected: the last-good index keeps serving), until a backoff
  delay elapses.  The delay grows exponentially with each consecutive
  open, capped at ``max_delay``, and is jittered so a fleet of replicas
  does not probe a shared faulty disk in lockstep.
* **half-open** — after the backoff, exactly one probe mutation is
  admitted.  Success closes the breaker; failure re-opens it with the
  next (longer) delay.

The backoff ladder is a shared :class:`repro.retry.BackoffPolicy` (the
same one the parallel build and the sharded serving tier retry with),
and both the clock and the jitter RNG are injectable, so tests drive
exact open/half-open/close schedules with
:class:`repro.testing.FakeClock` and a seeded :class:`random.Random` —
no sleeping, no flakes.  *Every* time read goes through the injected
clock (:meth:`allow`, :meth:`retry_after`, the open transition), and the
policy itself never sleeps or reads a clock, so a breaker driven by a
``FakeClock`` can never block a test for real.
"""

from __future__ import annotations

import random
import time

from .errors import CircuitOpenError, RequestError
from .retry import BackoffPolicy

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure circuit breaker with jittered exponential backoff.

    Parameters
    ----------
    threshold:
        Consecutive failures that trip the breaker open.
    base_delay:
        Backoff before the first half-open probe, in seconds.  Each
        consecutive re-open doubles it, up to ``max_delay``.
    max_delay:
        Backoff ceiling in seconds.
    jitter:
        Relative jitter amplitude: the delay is scaled by a factor drawn
        uniformly from ``[1 - jitter, 1 + jitter]``.
    clock:
        Zero-argument callable returning seconds
        (:func:`time.monotonic` by default); inject a
        :class:`repro.testing.FakeClock` for deterministic tests.
    rng:
        :class:`random.Random` used for jitter; seed one for determinism.

    Examples
    --------
    >>> from repro.testing import FakeClock
    >>> clock = FakeClock()
    >>> br = CircuitBreaker(threshold=2, base_delay=1.0, jitter=0.0, clock=clock)
    >>> br.record_failure(); br.state
    'closed'
    >>> br.record_failure(); br.state
    'open'
    >>> br.allow()
    False
    >>> clock.advance(1.0)
    >>> br.allow(), br.state          # backoff elapsed: one probe admitted
    (True, 'half_open')
    >>> br.record_success(); br.state
    'closed'
    """

    def __init__(
        self,
        threshold: int = 5,
        base_delay: float = 1.0,
        max_delay: float = 60.0,
        jitter: float = 0.1,
        clock=None,
        rng: random.Random | None = None,
    ):
        if threshold < 1:
            raise RequestError(f"breaker threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        # The shared ladder validates the delay/jitter parameters; it is
        # consulted only through .delay(), so the breaker's single time
        # source stays the injected clock.
        self._backoff = BackoffPolicy(
            base_delay=base_delay, max_delay=max_delay, jitter=jitter, rng=rng
        )
        self._clock = clock if clock is not None else time.monotonic
        self._state = "closed"
        self._failures = 0  # consecutive, while closed
        self._opens = 0  # consecutive opens without an intervening close
        self._opened_at = 0.0
        self._delay = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` — as of the last call.

        Reading the state does not consult the clock; an elapsed backoff
        shows up as ``half_open`` only once :meth:`allow` admits the probe.
        """
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success (while closed)."""
        return self._failures

    def retry_after(self) -> float:
        """Seconds until the next half-open probe (0 unless open)."""
        if self._state != "open":
            return 0.0
        return max(0.0, self._opened_at + self._delay - self._clock())

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether a mutation may proceed now.

        Transitions ``open -> half_open`` when the backoff has elapsed;
        the call that makes the transition is the single admitted probe
        (subsequent ``allow()`` calls return ``False`` until the probe
        reports back via :meth:`record_success` / :meth:`record_failure`).
        """
        if self._state == "closed":
            return True
        if self._state == "open":
            if self._clock() >= self._opened_at + self._delay:
                self._state = "half_open"
                return True
            return False
        return False  # half_open: the probe is already in flight

    def guard(self, what: str = "mutation") -> None:
        """Raise :class:`~repro.errors.CircuitOpenError` unless admitted."""
        if not self.allow():
            raise CircuitOpenError(
                f"{what} rejected: circuit breaker is {self._state} "
                f"after {self.threshold} consecutive infrastructure "
                f"failures; retry in {self.retry_after():.3f}s",
                retry_after=self.retry_after(),
            )

    def record_success(self) -> None:
        """Note a successful mutation; closes a half-open breaker."""
        self._state = "closed"
        self._failures = 0
        self._opens = 0

    def record_failure(self) -> None:
        """Note an infrastructure failure; may trip or re-open the breaker."""
        if self._state == "half_open":
            self._open()
            return
        self._failures += 1
        if self._state == "closed" and self._failures >= self.threshold:
            self._open()

    def _open(self) -> None:
        self._opens += 1
        delay = self._backoff.delay(self._opens - 1)
        self._state = "open"
        self._failures = 0
        self._opened_at = self._clock()
        self._delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self._state!r}, "
            f"failures={self._failures}/{self.threshold}, "
            f"retry_after={self.retry_after():.3f})"
        )
