"""A small operational layer: typed requests, audit log, snapshots.

:class:`HCLService` wraps a :class:`~repro.core.dynhcl.DynamicHCL` the way
a deployment would embed it behind an API: operations arrive as typed
request objects, every mutation is audited, query answers flow through the
version-invalidated cache, and the whole index can be checkpointed to /
restored from disk (binary format) without rebuilding.

This layer adds no algorithmics — it exists so the library is adoptable as
a component, and it doubles as an end-to-end exercise of the public API in
the test suite.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Union

from .core.cache import CachedQueryEngine
from .core.dynhcl import DynamicHCL
from .core.serialization import load_index_binary, save_index_binary
from .errors import ReproError
from .graphs.graph import Graph

__all__ = [
    "HCLService",
    "DistanceRequest",
    "ConstrainedDistanceRequest",
    "BatchQueryRequest",
    "AddLandmarkRequest",
    "RemoveLandmarkRequest",
    "AuditRecord",
]


@dataclass(frozen=True)
class DistanceRequest:
    """Exact distance query."""

    s: int
    t: int


@dataclass(frozen=True)
class ConstrainedDistanceRequest:
    """Landmark-constrained distance query (``QUERY``)."""

    s: int
    t: int


@dataclass(frozen=True)
class BatchQueryRequest:
    """Bulk query: many ``(s, t)`` pairs served as one batch.

    ``exact=False`` answers the landmark-constrained ``QUERY`` per pair,
    ``exact=True`` the exact distance — matching what a sequence of
    :class:`ConstrainedDistanceRequest` / :class:`DistanceRequest`
    submissions would return, pair for pair.  ``workers`` bounds the
    process pool used for large batches; it is clamped to the machine's
    core count so an over-asked deployment never oversubscribes.
    """

    pairs: tuple[tuple[int, int], ...]
    exact: bool = False
    workers: int | None = None


@dataclass(frozen=True)
class AddLandmarkRequest:
    """Promote a vertex (``UPGRADE-LMK``)."""

    vertex: int


@dataclass(frozen=True)
class RemoveLandmarkRequest:
    """Demote a landmark (``DOWNGRADE-LMK``)."""

    vertex: int


Request = Union[
    DistanceRequest,
    ConstrainedDistanceRequest,
    BatchQueryRequest,
    AddLandmarkRequest,
    RemoveLandmarkRequest,
]


@dataclass(frozen=True)
class AuditRecord:
    """One processed request with its outcome and wall-clock cost."""

    request: Request
    result: object
    seconds: float
    ok: bool
    error: str | None = None


@dataclass
class ServiceStats:
    """Aggregate counters of a service session."""

    queries: int = 0
    mutations: int = 0
    failures: int = 0


class HCLService:
    """Request-oriented facade over a dynamic HCL index.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> g = Graph(4)
    >>> for u, v in [(0, 1), (1, 2), (2, 3)]:
    ...     g.add_edge(u, v, 1.0)
    >>> svc = HCLService.build(g, [1])
    >>> svc.submit(DistanceRequest(0, 3))
    3.0
    >>> _ = svc.submit(AddLandmarkRequest(3))
    >>> sorted(svc.landmarks)
    [1, 3]
    """

    def __init__(self, dyn: DynamicHCL, cache_capacity: int = 65536):
        self._dyn = dyn
        self._engine = CachedQueryEngine(dyn, capacity=cache_capacity)
        self.audit: list[AuditRecord] = []
        self.stats = ServiceStats()

    @classmethod
    def build(cls, graph: Graph, landmarks) -> "HCLService":
        """Build the underlying index and wrap it."""
        return cls(DynamicHCL.build(graph, landmarks))

    # ------------------------------------------------------------------
    # Request processing
    # ------------------------------------------------------------------
    @property
    def landmarks(self) -> set[int]:
        """Current landmark set."""
        return self._dyn.landmarks

    @property
    def cache_stats(self):
        """Hit/miss counters of the query cache."""
        return self._engine.stats

    def submit(self, request: Request):
        """Process one request; raises on failure after auditing it."""
        start = time.perf_counter()
        try:
            if isinstance(request, DistanceRequest):
                result = self._engine.distance(request.s, request.t)
                self.stats.queries += 1
            elif isinstance(request, ConstrainedDistanceRequest):
                result = self._engine.query(request.s, request.t)
                self.stats.queries += 1
            elif isinstance(request, BatchQueryRequest):
                workers = request.workers
                if workers is not None:
                    workers = min(workers, os.cpu_count() or 1)
                result = self._engine.batch(
                    request.pairs, workers=workers, exact=request.exact
                )
                self.stats.queries += len(request.pairs)
            elif isinstance(request, AddLandmarkRequest):
                result = self._engine.add_landmark(request.vertex)
                self.stats.mutations += 1
            elif isinstance(request, RemoveLandmarkRequest):
                result = self._engine.remove_landmark(request.vertex)
                self.stats.mutations += 1
            else:
                raise ReproError(f"unknown request type {type(request).__name__}")
        except ReproError as exc:
            self.stats.failures += 1
            self.audit.append(
                AuditRecord(
                    request, None, time.perf_counter() - start, False, str(exc)
                )
            )
            raise
        self.audit.append(
            AuditRecord(request, result, time.perf_counter() - start, True)
        )
        return result

    def submit_batch(self, requests) -> list[AuditRecord]:
        """Process requests in order; stops at the first failure."""
        before = len(self.audit)
        for request in requests:
            self.submit(request)
        return self.audit[before:]

    def query_batch(
        self,
        pairs,
        workers: int | None = None,
        exact: bool = False,
    ) -> list[float]:
        """Serve many queries as one audited batch.

        Equivalent to submitting one :class:`ConstrainedDistanceRequest`
        (or :class:`DistanceRequest` when ``exact``) per pair — same
        answers, same cache — but the distinct pairs are solved together
        with shared per-endpoint state (exact batches add one shared graph
        snapshot), and large batches may fan out over ``workers``
        processes (clamped to the
        available cores; small batches stay serial).  Returns one value per
        pair in input order.
        """
        return self.submit(
            BatchQueryRequest(tuple(pairs), exact=exact, workers=workers)
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, target: str | Path | BinaryIO) -> None:
        """Persist the current index (binary format)."""
        save_index_binary(self._dyn.index, target)

    @classmethod
    def restore(
        cls, graph: Graph, source: str | Path | BinaryIO
    ) -> "HCLService":
        """Recreate a service from a checkpoint, skipping BUILDHCL."""
        index = load_index_binary(graph, source)
        return cls(DynamicHCL(index))
