"""A small operational layer: typed requests, audit log, durable snapshots.

:class:`HCLService` wraps a :class:`~repro.core.dynhcl.DynamicHCL` the way
a deployment would embed it behind an API: operations arrive as typed
request objects, every outcome — success or failure, library error or
foreign exception — is audited, query answers flow through the
version-invalidated cache, and the whole index can be checkpointed to /
restored from disk (binary format) without rebuilding.

Crash safety spans three mechanisms:

* **Transactional mutations** — landmark requests are all-or-nothing; an
  exception mid-``UPGRADE-LMK``/``DOWNGRADE-LMK`` rolls the index back to
  its pre-request state (see :mod:`repro.core.transaction`).
  :meth:`HCLService.submit_batch` extends this to whole batches with
  ``on_error="rollback"``.
* **Durability** — an optional :class:`~repro.core.wal.WriteAheadLog`
  records every committed mutation; :meth:`HCLService.checkpoint` writes
  atomic, checksummed snapshots that embed the WAL position they include.
* **Recovery** — :meth:`HCLService.recover` rebuilds a service from
  ``checkpoint + WAL suffix``, tolerates a torn WAL tail, probes the
  cover property on a sample, and returns a typed
  :class:`RecoveryReport`.

This layer adds no algorithmics — it exists so the library is adoptable as
a component, and it doubles as an end-to-end exercise of the public API in
the test suite.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Union

from .breaker import CircuitBreaker
from .budget import Budget, DegradedResult
from .core.auditor import IndexAuditor, PlanAuditor
from .core.cache import CachedQueryEngine
from .core.dynhcl import DynamicHCL
from .core.invariants import find_cover_violations, sample_vertex_pairs
from .core.planvec import default_backend
from .core.shm import COUNTS as SHM_COUNTS
from .core.shm import quarantined_segments, shm_available
from .core.serialization import (
    load_checkpoint,
    load_index_binary,
    save_index_binary,
)
from .core.transaction import IndexTransaction
from .core.wal import WalScan, WriteAheadLog, scan_wal
from .errors import (
    Overloaded,
    RecoveryError,
    ReproError,
    RequestError,
    ServiceError,
    TransactionError,
    VertexError,
    WALError,
)
from .graphs.graph import Graph
from .obs import (
    OBS,
    SIZE_BOUNDS,
    MetricsRegistry,
    merge_snapshots,
    render_json,
    render_prometheus,
)

__all__ = [
    "HCLService",
    "DistanceRequest",
    "ConstrainedDistanceRequest",
    "BatchQueryRequest",
    "AddLandmarkRequest",
    "RemoveLandmarkRequest",
    "BatchReconfigureRequest",
    "AuditRecord",
    "RecoveryReport",
]


@dataclass(frozen=True)
class DistanceRequest:
    """Exact distance query."""

    s: int
    t: int


@dataclass(frozen=True)
class ConstrainedDistanceRequest:
    """Landmark-constrained distance query (``QUERY``)."""

    s: int
    t: int


@dataclass(frozen=True)
class BatchQueryRequest:
    """Bulk query: many ``(s, t)`` pairs served as one batch.

    ``exact=False`` answers the landmark-constrained ``QUERY`` per pair,
    ``exact=True`` the exact distance — matching what a sequence of
    :class:`ConstrainedDistanceRequest` / :class:`DistanceRequest`
    submissions would return, pair for pair.  ``workers`` bounds the
    process pool used for large batches; it is clamped to the machine's
    core count so an over-asked deployment never oversubscribes, and
    rejected with :class:`~repro.errors.RequestError` when non-positive.
    ``backend`` selects the plan's constrained kernel (``"auto"`` /
    ``"vector"`` / ``"flat"`` — see
    :func:`repro.core.batchquery.query_batch`); every choice returns
    bitwise-identical answers.
    """

    pairs: tuple[tuple[int, int], ...]
    exact: bool = False
    workers: int | None = None
    backend: str = "auto"


@dataclass(frozen=True)
class AddLandmarkRequest:
    """Promote a vertex (``UPGRADE-LMK``)."""

    vertex: int


@dataclass(frozen=True)
class RemoveLandmarkRequest:
    """Demote a landmark (``DOWNGRADE-LMK``)."""

    vertex: int


@dataclass(frozen=True)
class BatchReconfigureRequest:
    """Apply landmark swaps and edge-weight updates as one merged batch.

    Executed by :meth:`repro.core.dynhcl.DynamicHCL.apply_batch`: one
    repair sweep over the merged affected set, one index transaction
    (whole-batch rollback), one WAL ``BATCH`` record, one epoch publish.
    ``edge_updates`` holds ``(u, v, new_weight)`` triples for existing
    edges; ``rebuild_factor`` is the rebuild-cutoff cost model knob.
    """

    adds: tuple[int, ...] = ()
    removes: tuple[int, ...] = ()
    edge_updates: tuple[tuple[int, int, float], ...] = ()
    rebuild_factor: float = 0.75


Request = Union[
    DistanceRequest,
    ConstrainedDistanceRequest,
    BatchQueryRequest,
    AddLandmarkRequest,
    RemoveLandmarkRequest,
    BatchReconfigureRequest,
]


@dataclass(frozen=True)
class AuditRecord:
    """One processed request with its outcome and wall-clock cost."""

    request: Request
    result: object
    seconds: float
    ok: bool
    error: str | None = None


@dataclass
class ServiceStats:
    """Aggregate counters of a service session."""

    queries: int = 0
    mutations: int = 0
    # Committed batch reconfigurations (each also adds its netted
    # operation count to ``mutations``).
    batches: int = 0
    failures: int = 0
    # Requests refused at admission time (in-flight budget full).
    shed: int = 0
    # Answers returned as flagged DegradedResult upper bounds (per pair).
    degraded: int = 0


@dataclass(frozen=True)
class RecoveryReport:
    """Typed health report of one :meth:`HCLService.recover` run.

    ``wal_records_seen`` counts the committed records found in the log
    (after any torn tail was discarded); ``wal_records_applied`` the
    subset past the checkpoint's ``wal_seq`` that replay re-executed.
    ``probe_ok`` reports the sampled cover-property probe; a ``False``
    value comes with the violation in ``probe_error``.
    """

    service: "HCLService"
    checkpoint_wal_seq: int
    wal_records_seen: int
    wal_records_applied: int
    wal_tail_truncated: bool
    probe_ok: bool
    probe_error: str | None
    landmarks: tuple[int, ...]


class HCLService:
    """Request-oriented facade over a dynamic HCL index.

    Parameters
    ----------
    dyn:
        The index to serve.
    cache_capacity:
        LRU capacity of the query cache.
    wal:
        Optional write-ahead log (a :class:`~repro.core.wal.WriteAheadLog`
        or a path to open one at) recording committed landmark mutations
        for crash recovery.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> g = Graph(4)
    >>> for u, v in [(0, 1), (1, 2), (2, 3)]:
    ...     g.add_edge(u, v, 1.0)
    >>> svc = HCLService.build(g, [1])
    >>> svc.submit(DistanceRequest(0, 3))
    3.0
    >>> _ = svc.submit(AddLandmarkRequest(3))
    >>> sorted(svc.landmarks)
    [1, 3]
    """

    def __init__(
        self,
        dyn: DynamicHCL,
        cache_capacity: int = 65536,
        wal: WriteAheadLog | str | Path | None = None,
        max_inflight: int | None = None,
        breaker: CircuitBreaker | None = None,
        auditor: IndexAuditor | None = None,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise RequestError(
                f"max_inflight must be >= 1 or None, got {max_inflight}"
            )
        self._dyn = dyn
        self._engine = CachedQueryEngine(dyn, capacity=cache_capacity)
        if isinstance(wal, (str, Path)):
            wal = WriteAheadLog(wal)
        self._wal = wal
        self._wal_buffer: list[tuple[str, object]] | None = None
        self.audit: list[AuditRecord] = []
        self.stats = ServiceStats()
        # Always-on service metrics (request latencies, batch sizes,
        # mutation affected sets).  Independent of the global repro.obs
        # tracer: a deployment gets operational numbers without paying for
        # library-internal tracing.
        self._registry = MetricsRegistry()
        # Admission control: requests beyond this many concurrently active
        # ones are shed with a retriable Overloaded instead of queueing.
        self._max_inflight = max_inflight
        self._inflight = 0
        # Fault isolation: K consecutive infrastructure failures on the
        # mutation path trip the breaker; queries keep serving the
        # last-good index while mutations are rejected as retriable.
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        # Background self-healing: tick from an ops loop (or call
        # audit_tick()); findings surface in health() and metrics().  A
        # caller-supplied auditor (custom sampling rates) is adopted: it
        # inherits the service's breaker and registry unless it brought
        # its own, so health() and metrics() stay complete either way.
        if auditor is None:
            auditor = IndexAuditor(
                dyn, breaker=self.breaker, registry=self._registry
            )
        else:
            if auditor._breaker is None:
                auditor._breaker = self.breaker
            if auditor._registry is None:
                auditor._registry = self._registry
        self.auditor = auditor
        # Lazily-built plan/shm cross-checker (see plan_audit_tick):
        # only deployments that tick it pay for it.
        self._plan_auditor = None

    @classmethod
    def build(
        cls,
        graph: Graph,
        landmarks,
        wal: WriteAheadLog | str | Path | None = None,
    ) -> "HCLService":
        """Build the underlying index and wrap it."""
        return cls(DynamicHCL.build(graph, landmarks), wal=wal)

    # ------------------------------------------------------------------
    # Request processing
    # ------------------------------------------------------------------
    @property
    def landmarks(self) -> set[int]:
        """Current landmark set."""
        return self._dyn.landmarks

    @property
    def cache_stats(self):
        """Hit/miss counters of the query cache.

        .. deprecated::
            Use :meth:`metrics` — cache counters are reported there as
            ``cache.hits`` / ``cache.misses`` / ``cache.invalidations``
            alongside every other service metric.  This accessor remains
            as an alias and returns the same live ``CacheStats`` object.
        """
        warnings.warn(
            "HCLService.cache_stats is deprecated; read cache.* from "
            "HCLService.metrics() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._engine.stats

    @property
    def wal(self) -> WriteAheadLog | None:
        """The attached write-ahead log, if any."""
        return self._wal

    def enable_plan_epochs(self, recompile: str = "sync"):
        """Serve queries from MVCC plan epochs; returns the registry.

        Delegates to
        :meth:`repro.core.dynhcl.DynamicHCL.enable_plan_epochs`; epoch
        id, live-epoch count and recompile latency then surface in
        :meth:`health` (``plan.epochs``) and :meth:`metrics`
        (``plan.epoch.*``).
        """
        return self._dyn.enable_plan_epochs(recompile=recompile)

    def shard(
        self, nshards: int = 2, replication_factor: int = 1, **kwargs
    ):
        """Stand up a sharded, replicated fleet serving this index.

        Enables MVCC plan epochs (so committed mutations propagate to
        the fleet via versioned snapshot broadcasts with atomic cutover)
        and returns a :class:`repro.shard.ShardedService` attached to
        the epoch registry.  The caller owns the fleet's lifecycle
        (``close()``); keyword arguments pass through to
        :class:`~repro.shard.coordinator.ShardedService`.
        """
        from .shard import ShardedService

        registry = self.enable_plan_epochs()
        return ShardedService.from_registry(
            registry,
            nshards=nshards,
            replication_factor=replication_factor,
            **kwargs,
        )

    def _validate_vertex(self, v, what: str = "vertex") -> None:
        n = self._dyn.index.graph.n
        if not isinstance(v, int) or not 0 <= v < n:
            raise VertexError(f"{what} {v!r} out of range [0, {n})")

    def _record_mutation(self, kind: str, arg) -> None:
        """Log one committed mutation (buffered inside rollback batches).

        ``arg`` is the vertex for ``"add"``/``"remove"``, or the netted
        ``(adds, removes, edge_updates)`` triple for ``"batch"`` — which
        lands in the WAL as a single atomic ``BATCH`` record.
        """
        if self._wal_buffer is not None:
            self._wal_buffer.append((kind, arg))
        elif self._wal is not None:
            if kind == "batch":
                self._wal.append_batch(*arg)
            else:
                self._wal.append(kind, arg)

    def _execute(
        self,
        request: Request,
        budget: Budget | None = None,
        strict: bool = False,
    ):
        """Validate and run one request (no auditing here).

        With no ``budget`` the engine calls are exactly the unbudgeted
        ones — same positional signatures as before budgets existed — so
        the undegraded hot path (and anything monkeypatching the engine)
        is untouched.
        """
        unbudgeted = budget is None and not strict
        if isinstance(request, DistanceRequest):
            self._validate_vertex(request.s, "source")
            self._validate_vertex(request.t, "target")
            if unbudgeted:
                result = self._engine.distance(request.s, request.t)
            else:
                result = self._engine.distance(
                    request.s, request.t, budget=budget, strict=strict
                )
            self.stats.queries += 1
        elif isinstance(request, ConstrainedDistanceRequest):
            self._validate_vertex(request.s, "source")
            self._validate_vertex(request.t, "target")
            if unbudgeted:
                result = self._engine.query(request.s, request.t)
            else:
                result = self._engine.query(
                    request.s, request.t, budget=budget, strict=strict
                )
            self.stats.queries += 1
        elif isinstance(request, BatchQueryRequest):
            workers = request.workers
            if workers is not None:
                if workers <= 0:
                    raise RequestError(
                        f"workers must be positive, got {workers}"
                    )
                workers = min(workers, os.cpu_count() or 1)
            n = self._dyn.index.graph.n
            for i, (s, t) in enumerate(request.pairs):
                if not (0 <= s < n and 0 <= t < n):
                    raise VertexError(
                        f"pair {i} = ({s}, {t}) out of range [0, {n})"
                    )
            if unbudgeted:
                result = self._engine.batch(
                    request.pairs,
                    workers=workers,
                    exact=request.exact,
                    backend=request.backend,
                )
            else:
                result = self._engine.batch(
                    request.pairs,
                    workers=workers,
                    exact=request.exact,
                    budget=budget,
                    strict=strict,
                    backend=request.backend,
                )
            self.stats.queries += len(request.pairs)
        elif isinstance(request, AddLandmarkRequest):
            self._validate_vertex(request.vertex)
            if budget is None:
                result = self._engine.add_landmark(request.vertex)
            else:
                result = self._engine.add_landmark(
                    request.vertex, budget=budget
                )
            self.stats.mutations += 1
            self._record_mutation("add", request.vertex)
        elif isinstance(request, RemoveLandmarkRequest):
            self._validate_vertex(request.vertex)
            if budget is None:
                result = self._engine.remove_landmark(request.vertex)
            else:
                result = self._engine.remove_landmark(
                    request.vertex, budget=budget
                )
            self.stats.mutations += 1
            self._record_mutation("remove", request.vertex)
        elif isinstance(request, BatchReconfigureRequest):
            for v in request.adds:
                self._validate_vertex(v, "batch add")
            for v in request.removes:
                self._validate_vertex(v, "batch remove")
            if budget is None:
                result = self._engine.apply_batch(
                    request.adds,
                    request.removes,
                    request.edge_updates,
                    rebuild_factor=request.rebuild_factor,
                )
            else:
                result = self._engine.apply_batch(
                    request.adds,
                    request.removes,
                    request.edge_updates,
                    rebuild_factor=request.rebuild_factor,
                    budget=budget,
                )
            self.stats.batches += 1
            self.stats.mutations += result.ops
            if result.ops:
                # One WAL record for the whole batch, carrying the netted
                # operations (replay re-nets to the same lists).
                self._record_mutation(
                    "batch",
                    (result.adds, result.removes, result.edge_updates),
                )
        else:
            raise RequestError(f"unknown request type {type(request).__name__}")
        return result

    def _shed(self, request: Request) -> None:
        """Refuse one request at admission time (no work performed)."""
        self.stats.shed += 1
        self._registry.counter("service.shed").inc()
        message = (
            f"{type(request).__name__} shed: {self._inflight} requests "
            f"in flight >= max_inflight={self._max_inflight}"
        )
        self.audit.append(
            AuditRecord(request, None, 0.0, False, f"Overloaded: {message}")
        )
        raise Overloaded(message)

    def _count_degraded(self, result) -> None:
        """Fold flagged anytime answers into stats (per degraded pair)."""
        if isinstance(result, DegradedResult):
            degraded = 1
        elif isinstance(result, list):
            degraded = sum(
                1 for value in result if isinstance(value, DegradedResult)
            )
        else:
            return
        if degraded:
            self.stats.degraded += degraded
            self._registry.counter("service.degraded").inc(degraded)

    def submit(
        self,
        request: Request,
        budget: Budget | None = None,
        strict: bool = False,
    ):
        """Process one request; raises on failure after auditing it.

        *Every* outcome is audited and counted, including exceptions that
        are not part of the library hierarchy; those are re-raised wrapped
        in :class:`~repro.errors.ServiceError` (with the original as
        ``__cause__``) so callers only ever see ``ReproError`` subclasses.
        Mutations are transactional: a failed one has already been rolled
        back by the time the exception reaches the caller.

        Operating under load:

        * ``budget`` bounds the request by wall clock and/or settled
          vertices; an expired query returns its anytime upper bound as a
          flagged :class:`~repro.budget.DegradedResult` (counted in
          ``service.degraded``), or raises
          :class:`~repro.errors.DeadlineExceeded` with ``strict=True``.
          An expired *mutation* always raises after rolling back.
        * With ``max_inflight`` configured, requests beyond the bound are
          shed up front with a retriable :class:`~repro.errors.Overloaded`.
        * Mutations pass through the circuit breaker: after ``threshold``
          consecutive :class:`~repro.errors.TransactionError` /
          :class:`~repro.errors.WALError` failures they are rejected with
          :class:`~repro.errors.CircuitOpenError` until a backed-off
          half-open probe succeeds.  Queries never touch the breaker.
        """
        if (
            self._max_inflight is not None
            and self._inflight >= self._max_inflight
        ):
            self._shed(request)
        is_mutation = isinstance(
            request,
            (AddLandmarkRequest, RemoveLandmarkRequest, BatchReconfigureRequest),
        )
        if is_mutation and not self.breaker.allow():
            self._registry.counter("service.breaker_rejections").inc()
            try:
                self.breaker.guard(type(request).__name__)
            except ReproError as exc:
                self.audit.append(
                    AuditRecord(
                        request, None, 0.0, False,
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                raise
        start = time.perf_counter()
        self._inflight += 1
        try:
            result = self._execute(request, budget, strict)
        except Exception as exc:
            elapsed = time.perf_counter() - start
            self.stats.failures += 1
            if is_mutation:
                if isinstance(exc, (TransactionError, WALError)):
                    self.breaker.record_failure()
                elif self.breaker.state == "half_open":
                    # The probe failed for a non-infrastructure reason
                    # (validation, budget): the write path itself worked,
                    # so the probe closes the breaker rather than wedging
                    # it half-open.
                    self.breaker.record_success()
            self._record_request(request, None, elapsed, ok=False)
            self.audit.append(
                AuditRecord(
                    request,
                    None,
                    elapsed,
                    False,
                    f"{type(exc).__name__}: {exc}",
                )
            )
            if isinstance(exc, ReproError):
                raise
            raise ServiceError(
                f"{type(request).__name__} failed unexpectedly: {exc}"
            ) from exc
        finally:
            self._inflight -= 1
        if is_mutation:
            self.breaker.record_success()
        elapsed = time.perf_counter() - start
        self._count_degraded(result)
        self._record_request(request, result, elapsed, ok=True)
        self.audit.append(AuditRecord(request, result, elapsed, True))
        return result

    def _record_request(
        self, request: Request, result, elapsed: float, ok: bool
    ) -> None:
        """Fold one processed request into the service registry."""
        reg = self._registry
        reg.counter("service.requests").inc()
        if not ok:
            reg.counter("service.request_failures").inc()
        reg.histogram("service.request.seconds").observe(elapsed)
        kind = type(request).__name__
        reg.histogram(f"service.request.{kind}.seconds").observe(elapsed)
        if isinstance(request, BatchQueryRequest):
            reg.histogram("service.batch_size", SIZE_BOUNDS).observe(
                len(request.pairs)
            )
        elif ok and isinstance(request, BatchReconfigureRequest):
            # The merged affected set spans upgrades, the shared downgrade
            # sweep and the edge re-passes.
            reg.histogram(
                "service.mutation.affected_set_size", SIZE_BOUNDS
            ).observe(
                getattr(result, "settled", 0) + getattr(result, "swept", 0)
            )
            reg.histogram("service.batch_ops", SIZE_BOUNDS).observe(
                getattr(result, "ops", 0)
            )
        elif ok and isinstance(
            request, (AddLandmarkRequest, RemoveLandmarkRequest)
        ):
            # UpgradeStats.settled / DowngradeStats.swept: the size of the
            # vertex set the mutation touched (paper Table 2's work measure).
            affected = getattr(result, "settled", None)
            if affected is None:
                affected = getattr(result, "swept", 0)
            reg.histogram(
                "service.mutation.affected_set_size", SIZE_BOUNDS
            ).observe(affected)

    def submit_batch(
        self,
        requests,
        on_error: str = "stop",
        budget: Budget | None = None,
        strict: bool = False,
    ) -> list[AuditRecord]:
        """Process requests in order with explicit failure semantics.

        A ``budget`` is shared by the whole batch (it is sticky: once the
        first request exhausts it, every later query degrades immediately
        and every later mutation is cancelled up front).

        ``on_error`` selects what a failing request does to the batch:

        * ``"stop"`` (default) — stop at the first failure and re-raise it;
          earlier requests keep their effects.
        * ``"rollback"`` — all-or-nothing: the whole batch runs inside one
          index transaction, so a failure anywhere undoes *every* mutation
          the batch already committed (update log and caches included),
          then re-raises.  WAL writes are buffered and only flushed when
          the batch commits, so the log never records undone mutations.
        * ``"continue"`` — audit the failure and keep going; inspect the
          returned records (``ok`` / ``error``) for the per-request
          outcomes.

        Returns the audit records of the processed requests.
        """
        if on_error not in ("stop", "rollback", "continue"):
            raise RequestError(
                f'on_error must be "stop", "rollback" or "continue", '
                f"got {on_error!r}"
            )
        before = len(self.audit)
        if on_error == "stop":
            for request in requests:
                self.submit(request, budget=budget, strict=strict)
        elif on_error == "continue":
            for request in requests:
                try:
                    self.submit(request, budget=budget, strict=strict)
                except ReproError:
                    pass  # audited by submit; batch keeps going
        else:  # rollback
            requests = list(requests)
            log_before = self._dyn.log.count
            mutations_before = self.stats.mutations
            outer_buffer = self._wal_buffer
            self._wal_buffer = []
            try:
                with IndexTransaction(self._dyn.index):
                    for request in requests:
                        self.submit(request, budget=budget, strict=strict)
            except Exception:
                # The transaction already restored the index; undo the
                # bookkeeping of mutations that committed inside the batch.
                self._wal_buffer = outer_buffer
                self._dyn.truncate_log(log_before)
                self.stats.mutations = mutations_before
                raise
            buffered = self._wal_buffer
            self._wal_buffer = outer_buffer
            for kind, arg in buffered:
                self._record_mutation(kind, arg)
        return self.audit[before:]

    def submit_batch_reconfigure(
        self,
        adds=(),
        removes=(),
        edge_updates=(),
        rebuild_factor: float = 0.75,
        budget: Budget | None = None,
    ):
        """Apply one merged reconfiguration batch through the service.

        Equivalent to submitting a :class:`BatchReconfigureRequest`: the
        batch passes admission control and the circuit breaker like any
        mutation, runs as **one** repair sweep inside **one** index
        transaction, and commits **one** WAL ``BATCH`` record and **one**
        epoch publish — failure anywhere (including ``budget`` expiry)
        rolls the whole batch back before the exception reaches the
        caller.  Returns the :class:`~repro.core.batch.BatchResult` with
        the merged work counters.
        """
        return self.submit(
            BatchReconfigureRequest(
                adds=tuple(adds),
                removes=tuple(removes),
                edge_updates=tuple(
                    (e.u, e.v, e.weight)
                    if hasattr(e, "weight")
                    else (e[0], e[1], e[2])
                    for e in edge_updates
                ),
                rebuild_factor=rebuild_factor,
            ),
            budget=budget,
        )

    def query_batch(
        self,
        pairs,
        workers: int | None = None,
        exact: bool = False,
        budget: Budget | None = None,
        strict: bool = False,
        backend: str = "auto",
    ) -> list[float]:
        """Serve many queries as one audited batch.

        Equivalent to submitting one :class:`ConstrainedDistanceRequest`
        (or :class:`DistanceRequest` when ``exact``) per pair — same
        answers, same cache — but the distinct pairs are solved together
        with shared per-endpoint state (exact batches add one shared graph
        snapshot), and large batches may fan out over ``workers``
        processes (clamped to the
        available cores; small batches stay serial).  Returns one value per
        pair in input order.

        A ``budget`` spans the whole batch (the batch runs serially then —
        pool workers cannot share a live budget) and is sticky: once it
        expires, the current and all remaining exact pairs come back as
        flagged :class:`~repro.budget.DegradedResult` upper bounds, or
        ``strict=True`` aborts the batch with
        :class:`~repro.errors.DeadlineExceeded`.
        """
        return self.submit(
            BatchQueryRequest(
                tuple(pairs), exact=exact, workers=workers, backend=backend
            ),
            budget=budget,
            strict=strict,
        )

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """One merged snapshot of everything observable about this service.

        Combines, in order:

        * the service's always-on registry (request latencies per type,
          batch sizes, mutation affected-set sizes);
        * the global :data:`repro.obs.OBS` registry, when tracing is
          enabled on a registry other than the service's own (search
          counters, WAL timings, algorithm work counters);
        * authoritative cache counters from the query engine
          (``cache.hits`` / ``cache.misses`` / ``cache.invalidations``
          plus the ``cache.hit_rate`` gauge) — these *overwrite* any
          merged ``cache.*`` series so the same event is never counted
          twice;
        * the session totals (``service.queries`` / ``service.mutations``
          / ``service.failures``).

        The result is a plain dict (see
        :meth:`repro.obs.MetricsRegistry.snapshot`) ready for
        :func:`repro.obs.render_prometheus` / :func:`repro.obs.render_json`
        or the :meth:`metrics_prometheus` / :meth:`metrics_json`
        conveniences.
        """
        snap = self._registry.snapshot()
        if (
            OBS.enabled
            and OBS.registry is not None
            and OBS.registry is not self._registry
        ):
            snap = merge_snapshots(snap, OBS.registry.snapshot())
        cs = self._engine.stats
        counters = snap["counters"]
        counters["cache.hits"] = cs.hits
        counters["cache.misses"] = cs.misses
        counters["cache.invalidations"] = cs.invalidations
        counters["service.queries"] = self.stats.queries
        counters["service.mutations"] = self.stats.mutations
        counters["service.failures"] = self.stats.failures
        counters["service.shed"] = self.stats.shed
        counters["service.degraded"] = self.stats.degraded
        snap["gauges"]["cache.hit_rate"] = cs.hit_rate
        # Breaker state as a gauge (0 closed, 1 half-open, 2 open) so a
        # scraper can alert on it without parsing strings.
        snap["gauges"]["service.breaker_state"] = {
            "closed": 0,
            "half_open": 1,
            "open": 2,
        }[self.breaker.state]
        snap["gauges"]["service.inflight"] = self._inflight
        snap["gauges"]["audit.quarantined"] = len(self.auditor.quarantined)
        registry = self._dyn.index._plan_registry
        if registry is not None:
            epochs = registry.summary()
            counters["plan.epoch.publishes"] = epochs["publishes"]
            counters["plan.epoch.incremental"] = epochs["incremental"]
            counters["plan.epoch.cancelled"] = epochs["cancelled"]
            snap["gauges"]["plan.epoch.id"] = epochs["epoch"]
            snap["gauges"]["plan.epoch.live"] = epochs["live"]
            snap["gauges"]["plan.epoch.last_recompile_seconds"] = epochs[
                "last_recompile_seconds"
            ]
        snap["counters"] = dict(sorted(counters.items()))
        snap["gauges"] = dict(sorted(snap["gauges"].items()))
        return snap

    # ------------------------------------------------------------------
    # Health & self-healing
    # ------------------------------------------------------------------
    def audit_tick(self):
        """Run one increment of the background index auditor.

        A deployment calls this from its maintenance loop (a thread, a
        cron tick, an idle callback); each call samples fresh vertex
        pairs, checks a rotating window of landmark rows against
        ground-truth searches, and repairs what it can.  Returns the
        :class:`~repro.core.auditor.AuditTickReport`; cumulative findings
        surface in :meth:`health` and :meth:`metrics`.
        """
        return self.auditor.tick()

    @property
    def plan_auditor(self) -> PlanAuditor:
        """The plan/shm cross-checker (built on first use)."""
        if self._plan_auditor is None:
            self._plan_auditor = PlanAuditor(
                self._dyn, registry=self._registry
            )
        return self._plan_auditor

    def plan_audit_tick(self):
        """Run one increment of the plan-integrity auditor.

        The derived-state counterpart of :meth:`audit_tick`: samples
        compiled-plan rows (and ``δ_H`` cells) and compares them bitwise
        against the authoritative dict labeling, re-verifies the plan's
        shared-memory segment checksums, and republishes a fresh plan on
        any mismatch.  Returns the
        :class:`~repro.core.auditor.PlanAuditReport`; cumulative state
        surfaces in :meth:`health` under ``plan.integrity``.  Also the
        natural ``integrity_check`` callable for a
        :class:`~repro.shard.supervisor.FleetSupervisor`::

            sup = FleetSupervisor(
                fleet, integrity_check=lambda: svc.plan_audit_tick().clean
            )
        """
        return self.plan_auditor.tick()

    def health(self) -> dict:
        """One structured verdict on whether this service is fit to serve.

        Combines the circuit breaker (write-path health), WAL liveness,
        the auditor's cumulative findings (read-path integrity), and the
        load-shedding counters.  ``status`` is the roll-up:

        * ``"ok"`` — breaker closed, nothing quarantined;
        * ``"degraded"`` — breaker half-open (probing after failures) or
          label rows are quarantined awaiting repair: answers are served
          but something needs attention;
        * ``"failed"`` — breaker open: mutations are being rejected and
          queries run on the last-good index.
        """
        breaker_state = self.breaker.state
        auditor = self.auditor.summary()
        if breaker_state == "open":
            status = "failed"
        elif breaker_state == "half_open" or auditor["quarantined"]:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "breaker": {
                "state": breaker_state,
                "consecutive_failures": self.breaker.consecutive_failures,
                "retry_after": self.breaker.retry_after(),
            },
            "wal": {
                "attached": self._wal is not None,
                "last_seq": self._wal.last_seq if self._wal else None,
            },
            "auditor": auditor,
            "inflight": self._inflight,
            "max_inflight": self._max_inflight,
            "shed": self.stats.shed,
            "degraded_answers": self.stats.degraded,
            "batches": self.stats.batches,
            "landmarks": len(self._dyn.landmarks),
            "version": self._dyn.version,
            "plan": {
                "mode": self._dyn.index.plan_mode,
                "compiled": self._dyn.index.plan() is not None,
                "backend": default_backend(),
                "shm": shm_available(),
                "epochs": (
                    self._dyn.index._plan_registry.summary()
                    if self._dyn.index._plan_registry is not None
                    else None
                ),
                "integrity": {
                    "quarantined_segments": quarantined_segments(),
                    "verified": SHM_COUNTS["verified"],
                    "failures": SHM_COUNTS["integrity_failures"],
                    "republished": SHM_COUNTS["republished"],
                    "auditor": (
                        self._plan_auditor.summary()
                        if self._plan_auditor is not None
                        else None
                    ),
                },
            },
        }

    def metrics_prometheus(self) -> str:
        """:meth:`metrics` rendered in the Prometheus text format."""
        return render_prometheus(self.metrics())

    def metrics_json(self) -> str:
        """:meth:`metrics` rendered as stable JSON."""
        return render_json(self.metrics())

    # ------------------------------------------------------------------
    # Checkpointing & recovery
    # ------------------------------------------------------------------
    def checkpoint(
        self, target: str | Path | BinaryIO, reset_wal: bool = False
    ) -> None:
        """Persist the current index (atomic, checksummed binary format).

        The checkpoint header records the WAL position it includes, so a
        later :meth:`recover` replays exactly the mutations committed
        after this call.  ``reset_wal`` drops the now-redundant WAL
        records once the checkpoint is safely on disk (sequence numbers
        keep rising, so older checkpoints remain usable only up to their
        own position).
        """
        wal_seq = self._wal.last_seq if self._wal is not None else 0
        save_index_binary(self._dyn.index, target, wal_seq=wal_seq)
        if reset_wal and self._wal is not None:
            self._wal.reset()

    @classmethod
    def restore(
        cls,
        graph: Graph,
        source: str | Path | BinaryIO,
        wal: WriteAheadLog | str | Path | None = None,
    ) -> "HCLService":
        """Recreate a service from a checkpoint, skipping BUILDHCL.

        Plain restore: the checkpoint is loaded as-is and no WAL replay
        happens — use :meth:`recover` to also re-apply mutations
        committed after the checkpoint.
        """
        index = load_index_binary(graph, source)
        return cls(DynamicHCL(index), wal=wal)

    @classmethod
    def recover(
        cls,
        graph: Graph,
        checkpoint: str | Path | BinaryIO,
        wal: WriteAheadLog | str | Path | None = None,
        probe_pairs: int = 40,
        probe_seed: int = 0,
    ) -> RecoveryReport:
        """Reconstruct a service from ``checkpoint + WAL`` after a crash.

        Loads the checkpoint (corruption raises
        :class:`~repro.errors.CheckpointError`, a wrong graph
        :class:`~repro.errors.VertexError`), then replays the committed
        WAL suffix — records with sequence numbers past the checkpoint's
        ``wal_seq``.  A truncated or corrupt WAL *tail* is tolerated:
        replay stops at the first bad record, exactly the
        committed-prefix semantics fsync'd appends guarantee.  A committed
        record that fails to re-apply means checkpoint and WAL disagree
        and raises :class:`~repro.errors.RecoveryError`.

        After replay a sampled cover-property probe grades the recovered
        index; its verdict lands in the returned :class:`RecoveryReport`
        together with replay statistics.  The probe draws its pairs and
        grades them through the same
        :func:`repro.core.invariants.sample_vertex_pairs` /
        :func:`repro.core.invariants.find_cover_violations` path the
        background :class:`~repro.core.auditor.IndexAuditor` ticks over,
        so ``RecoveryReport.probe_ok`` and a subsequent
        :meth:`health` report cannot disagree about what a violation is.
        When ``wal`` is given as a path, the recovered service continues
        logging to it (the torn tail, if any, is repaired on open).
        """
        index, ckpt_seq = load_checkpoint(graph, checkpoint)
        dyn = DynamicHCL(index)

        if wal is None:
            scan = WalScan((), truncated=False, good_bytes=0)
        elif isinstance(wal, WriteAheadLog):
            scan = wal.scan()
        else:
            scan = scan_wal(wal)

        applied = 0
        for record in scan.records:
            if record.seq <= ckpt_seq:
                continue
            try:
                if record.kind == "add":
                    dyn.add_landmark(record.vertex)
                elif record.kind == "remove":
                    dyn.remove_landmark(record.vertex)
                else:  # "batch": replayed atomically, one merged repair
                    dyn.apply_batch(
                        adds=record.batch.adds,
                        removes=record.batch.removes,
                        edge_updates=record.batch.edge_updates,
                    )
            except Exception as exc:
                raise RecoveryError(
                    f"WAL record seq={record.seq} "
                    f"({record.kind} {record.vertex}) does not apply to "
                    f"the checkpoint: {exc}"
                ) from exc
            applied += 1

        probe = sample_vertex_pairs(index, sample=probe_pairs, seed=probe_seed)
        violations = find_cover_violations(index, pairs=probe, max_violations=1)
        probe_ok = not violations
        probe_error = str(violations[0]) if violations else None

        if wal is not None and not isinstance(wal, WriteAheadLog):
            wal = WriteAheadLog(wal)
        service = cls(dyn, wal=wal)
        return RecoveryReport(
            service=service,
            checkpoint_wal_seq=ckpt_seq,
            wal_records_seen=len(scan.records),
            wal_records_applied=applied,
            wal_tail_truncated=scan.truncated,
            probe_ok=probe_ok,
            probe_error=probe_error,
            landmarks=tuple(sorted(index.landmarks)),
        )
