"""Jittered exponential backoff, shared by every retry loop in the library.

Three subsystems retry around transient infrastructure faults: the
circuit breaker schedules its half-open probes
(:mod:`repro.breaker`), the parallel build re-pools failed landmark
passes (:func:`repro.core.build.build_hcl_parallel`), and the sharded
serving tier retries and fails over shard RPCs
(:mod:`repro.shard.coordinator`).  All three want the same delay ladder
— exponential growth from a base, capped, multiplicatively jittered so a
fleet of replicas does not hammer a shared faulty resource in lockstep —
and before this module each grew its own hand-rolled copy.

:class:`BackoffPolicy` is that ladder as a value object.  It owns no
clock and never blocks on its own: :meth:`delay` is a pure function of
the attempt number (plus the injected jitter RNG), and :meth:`pause`
sleeps through an injectable ``sleeper`` so deterministic tests swap in
a recording fake and never wait for real.
"""

from __future__ import annotations

import random
import time

from .errors import RequestError

__all__ = ["BackoffPolicy"]


class BackoffPolicy:
    """Capped exponential backoff with multiplicative jitter.

    The delay before retry ``attempt`` (0-based) is::

        min(max_delay, base_delay * factor ** attempt) * U

    where ``U`` is drawn uniformly from ``[1 - jitter, 1 + jitter]``.

    Parameters
    ----------
    base_delay:
        Delay before the first retry, in seconds (must be > 0).
    max_delay:
        Delay ceiling in seconds (must be >= ``base_delay``).
    factor:
        Per-attempt growth factor (must be >= 1).
    jitter:
        Relative jitter amplitude in ``[0, 1)``; 0 disables jitter.
    rng:
        :class:`random.Random` used for jitter; seed one for determinism.
    sleeper:
        One-argument callable used by :meth:`pause`
        (:func:`time.sleep` by default); inject a recording fake in
        tests so backoff schedules are asserted, not slept.

    Examples
    --------
    >>> p = BackoffPolicy(base_delay=1.0, max_delay=8.0, jitter=0.0)
    >>> [p.delay(a) for a in range(5)]
    [1.0, 2.0, 4.0, 8.0, 8.0]
    """

    __slots__ = ("base_delay", "max_delay", "factor", "jitter", "_rng", "_sleeper")

    def __init__(
        self,
        base_delay: float = 1.0,
        max_delay: float = 60.0,
        factor: float = 2.0,
        jitter: float = 0.1,
        rng: random.Random | None = None,
        sleeper=None,
    ):
        if base_delay <= 0 or max_delay < base_delay:
            raise RequestError(
                f"backoff delays must satisfy 0 < base_delay <= max_delay, "
                f"got base_delay={base_delay}, max_delay={max_delay}"
            )
        if factor < 1.0:
            raise RequestError(f"backoff factor must be >= 1, got {factor}")
        if not 0.0 <= jitter < 1.0:
            raise RequestError(f"backoff jitter must be in [0, 1), got {jitter}")
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.factor = factor
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()
        self._sleeper = sleeper if sleeper is not None else time.sleep

    def delay(self, attempt: int) -> float:
        """Jittered delay in seconds before retry ``attempt`` (0-based)."""
        if attempt < 0:
            raise RequestError(f"attempt must be >= 0, got {attempt}")
        delay = min(self.max_delay, self.base_delay * self.factor**attempt)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    def pause(self, attempt: int, cap: float | None = None) -> float:
        """Sleep through :meth:`delay` (clamped to ``cap``); returns the wait.

        ``cap`` bounds the sleep — pass a budget's remaining wall clock so
        a retry loop never sleeps past its caller's deadline.  A
        non-positive cap skips the sleep entirely and returns 0.
        """
        delay = self.delay(attempt)
        if cap is not None:
            if cap <= 0:
                return 0.0
            delay = min(delay, cap)
        self._sleeper(delay)
        return delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BackoffPolicy(base_delay={self.base_delay}, "
            f"max_delay={self.max_delay}, factor={self.factor}, "
            f"jitter={self.jitter})"
        )
