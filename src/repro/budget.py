"""Per-request work budgets and anytime degraded answers.

The ROADMAP's serving scenario — heavy traffic, millions of users — means
no single query may hold a worker hostage.  The paper's ``QUERY`` routine
is an anytime algorithm in disguise: the landmark-constrained upper bound
``d_L(s, t)`` costs only ``O(|L(s)| · |L(t)|)`` label work, *before* the
bounded bidirectional refinement search on ``G[V \\ R]`` even starts.  A
:class:`Budget` makes that structure operational:

* it bounds a request by **wall clock** (a deadline) and/or by **settled
  vertices** (a machine-independent step budget — the same work measure
  the paper's cost model counts);
* hot loops charge it cheaply (one integer add per settled vertex; the
  clock is consulted only every :data:`CHECK_INTERVAL` charges);
* once exceeded it stays exceeded (sticky), so one budget can span a
  whole batch and every later pair degrades instead of re-arming.

When a budget expires mid-refinement the query stack returns the
already-computed landmark upper bound as a :class:`DegradedResult` —
a ``float`` subclass flagged ``is_upper_bound=True`` — instead of
raising; ``strict=True`` opts back into a hard
:class:`~repro.errors.DeadlineExceeded`.  Mutations
(``UPGRADE-LMK``/``DOWNGRADE-LMK``) cannot return partial answers, so
their budget checkpoints always raise; the surrounding
:class:`~repro.core.transaction.IndexTransaction` rolls the index back,
turning a deadline into a clean, retriable cancellation.

The clock is injectable (``clock=...``) so the deterministic
:class:`repro.testing.FakeClock` can drive deadline schedules in tests
without sleeping.  With no budget passed (``budget=None``, the default
everywhere) every code path is byte-identical to the unbudgeted engine:
the kernels dispatch to separate budgeted twins, exactly like the
:mod:`repro.obs` instrumentation twins.
"""

from __future__ import annotations

import math
import time

from .errors import DeadlineExceeded, RequestError

__all__ = ["Budget", "DegradedResult", "CHECK_INTERVAL"]

#: Settled-vertex charges between wall-clock consultations.  Budget checks
#: must be cheap enough to sit in a search loop; one ``perf_counter`` call
#: per settled vertex is not, one per 64 is noise.
CHECK_INTERVAL = 64


class DegradedResult(float):
    """An anytime answer returned when a budget expired mid-query.

    A ``float`` subclass, so callers that only care about the value keep
    working unchanged (comparisons, arithmetic, formatting); callers that
    care about exactness test ``isinstance(x, DegradedResult)`` or the
    ``is_upper_bound`` flag.  The value is always **sound**: an upper
    bound on (and frequently equal to) the true distance, never below it.

    ``reason`` records which limit expired (``"wall_clock"`` or
    ``"steps"``) for observability.
    """

    __slots__ = ("is_upper_bound", "reason")

    def __new__(cls, value: float, is_upper_bound: bool = True, reason: str = ""):
        self = super().__new__(cls, value)
        self.is_upper_bound = is_upper_bound
        self.reason = reason
        return self

    @property
    def value(self) -> float:
        """The bound as a plain float."""
        return float(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DegradedResult({float(self)!r}, "
            f"is_upper_bound={self.is_upper_bound}, reason={self.reason!r})"
        )


class Budget:
    """Wall-clock + step budget charged by the serving and update paths.

    Parameters
    ----------
    seconds:
        Wall-clock allowance from construction time (``None`` = no
        deadline).  Measured on ``clock``, which defaults to
        :func:`time.monotonic`.
    max_settled:
        Total settled-vertex allowance across every search this budget is
        threaded through (``None`` = unlimited).  Settled vertices are the
        paper's machine-independent work measure, so a step budget means
        the same thing on every machine.
    clock:
        Zero-argument callable returning seconds.  Inject a
        :class:`repro.testing.FakeClock` for deterministic tests.

    Examples
    --------
    >>> b = Budget(max_settled=10)
    >>> b.charge(4), b.exceeded
    (False, False)
    >>> b.charge(10), b.exceeded
    (True, True)
    >>> b.charge(0)     # sticky: once exceeded, always exceeded
    True
    """

    __slots__ = ("deadline", "max_settled", "settled", "exceeded", "reason", "_clock", "_countdown")

    def __init__(
        self,
        seconds: float | None = None,
        max_settled: int | None = None,
        clock=None,
    ):
        if seconds is not None and not (seconds >= 0 and math.isfinite(seconds)):
            raise RequestError(f"budget seconds must be finite and >= 0, got {seconds!r}")
        if max_settled is not None and max_settled < 0:
            raise RequestError(f"budget max_settled must be >= 0, got {max_settled!r}")
        self._clock = clock if clock is not None else time.monotonic
        self.deadline = self._clock() + seconds if seconds is not None else None
        self.max_settled = max_settled
        self.settled = 0
        self.exceeded = False
        self.reason = ""
        self._countdown = CHECK_INTERVAL

    @property
    def unlimited(self) -> bool:
        """Whether this budget can never expire."""
        return self.deadline is None and self.max_settled is None

    def _expire(self, reason: str) -> None:
        self.exceeded = True
        self.reason = reason

    def check(self) -> bool:
        """Consult both limits now; returns (and latches) ``exceeded``.

        Used at coarse checkpoints — phase boundaries, per-pair batch
        steps — where the cost of a clock read does not matter.
        """
        if self.exceeded:
            return True
        if self.max_settled is not None and self.settled > self.max_settled:
            self._expire("steps")
            return True
        if self.deadline is not None and self._clock() >= self.deadline:
            self._expire("wall_clock")
            return True
        return False

    def charge(self, n: int = 1) -> bool:
        """Add ``n`` settled vertices; returns ``True`` once exceeded.

        The step limit is enforced on every call (one compare); the wall
        clock only every :data:`CHECK_INTERVAL` charges, keeping the cost
        per settled vertex at an integer add on the happy path.
        """
        if self.exceeded:
            return True
        self.settled += n
        if self.max_settled is not None and self.settled > self.max_settled:
            self._expire("steps")
            return True
        if self.deadline is not None:
            self._countdown -= n
            if self._countdown <= 0:
                self._countdown = CHECK_INTERVAL
                if self._clock() >= self.deadline:
                    self._expire("wall_clock")
                    return True
        return False

    def remaining_seconds(self) -> float:
        """Seconds until the deadline (``inf`` without one, floored at 0)."""
        if self.deadline is None:
            return math.inf
        return max(0.0, self.deadline - self._clock())

    def clamp(self, seconds: float) -> float:
        """``seconds`` clamped to the remaining wall clock (floored at 0).

        The per-step timeout helper for code that waits on external
        resources under this budget (shard RPCs, pool futures): a blocking
        wait of ``budget.clamp(step_timeout)`` can never overshoot the
        request deadline.
        """
        return min(seconds, self.remaining_seconds())

    def raise_if_exceeded(self, what: str = "operation") -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` once exceeded.

        The cancellation checkpoint used by the mutation algorithms, where
        a partial answer is not an option.
        """
        if self.check():
            raise DeadlineExceeded(
                f"{what} exceeded its budget "
                f"({self.reason or 'expired'}; settled={self.settled})"
            )

    def degrade(self, value: float) -> DegradedResult:
        """Wrap an anytime upper bound in a flagged :class:`DegradedResult`."""
        return DegradedResult(value, is_upper_bound=True, reason=self.reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Budget(deadline={self.deadline}, max_settled={self.max_settled}, "
            f"settled={self.settled}, exceeded={self.exceeded})"
        )
