"""The library-wide floating-point comparison policy.

On float-weighted graphs, summed path weights that are mathematically
equal can differ in the last bits depending on summation order (a highway
row composes ``δ_H(r, r̂) + δ_H(r̂, r')`` while a search accumulates the
same edges one by one).  Every strict comparison that decides *structure*
— keep vs. prune a label entry, tie vs. no tie on the shortest-path DAG —
must therefore treat values within a relative tolerance as equal, or the
dynamic algorithms and ``BUILDHCL`` drift apart by a handful of entries
(the ROADMAP's former float-weight minimality gap).

``REL_TOL`` is the single source of truth: the pruning tests of
Algorithms 1 and 2, the tie propagation of
:func:`repro.graphs.traversal.flagged_single_source`, and the
tolerance-aware mode of :meth:`repro.core.index.HCLIndex.structurally_equal`
all use it.  It is deliberately far above 1 ulp (~2e-16 relative) and far
below any genuine weight difference the supported workloads produce
(integer weights compare exactly for magnitudes up to ``1/REL_TOL``).

Hot loops inline the multiplicative forms instead of calling
:func:`math.isclose` (for nonnegative finite operands they are
equivalent, and a multiply is several times cheaper than a function
call):

* *strictly below* ``b`` by more than tolerance:  ``a < b * PRUNE_SCALE``
* *ties* ``b`` from above (``a >= b``):           ``a * PRUNE_SCALE <= b``
"""

from __future__ import annotations

import math

__all__ = ["REL_TOL", "PRUNE_SCALE", "TIE_HI", "close", "strictly_less"]

REL_TOL = 1e-9

# a < b * PRUNE_SCALE  <=>  b - a > REL_TOL * b  (for finite 0 <= a, b).
PRUNE_SCALE = 1.0 - REL_TOL

# b * PRUNE_SCALE <= a <= b * TIE_HI  <=>  a ties b within tolerance.
TIE_HI = 1.0 + REL_TOL


def close(a: float, b: float, rel_tol: float = REL_TOL) -> bool:
    """Tolerant equality; exact matches (including ``inf``) short-circuit."""
    return a == b or math.isclose(a, b, rel_tol=rel_tol, abs_tol=0.0)


def strictly_less(a: float, b: float, rel_tol: float = REL_TOL) -> bool:
    """``a < b`` by more than the tolerance (never true for near-ties)."""
    return a < b and not math.isclose(a, b, rel_tol=rel_tol, abs_tol=0.0)
