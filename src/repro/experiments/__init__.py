"""Experiment harness regenerating every table and figure of the paper."""

from .ablations import (
    run_ablation_batch,
    run_ablation_cleanup,
    run_ablation_incdec,
    run_ablation_selection,
)
from .extensions import (
    run_extension_batch,
    run_extension_directed,
    run_extension_fullydynamic,
)
from .export import g1_rows, g2_rows, write_csv, write_json
from .figure1 import run_figure1
from .figure2 import run_figure2
from .harness import (
    G1Result,
    G2Result,
    ParallelResult,
    run_g1,
    run_g2,
    run_parallel,
)
from .reporting import (
    fmt_amortized,
    fmt_count,
    fmt_seconds,
    fmt_speedup,
    render_table,
)
from .table1 import run_table1
from .table2 import run_table2
from .table3 import run_table3

__all__ = [
    "run_table1",
    "run_table2",
    "run_table3",
    "run_figure1",
    "run_figure2",
    "run_ablation_cleanup",
    "run_ablation_batch",
    "run_ablation_incdec",
    "run_extension_batch",
    "run_extension_directed",
    "run_extension_fullydynamic",
    "run_ablation_selection",
    "run_g1",
    "run_g2",
    "run_parallel",
    "G1Result",
    "G2Result",
    "ParallelResult",
    "render_table",
    "fmt_count",
    "fmt_seconds",
    "fmt_speedup",
    "fmt_amortized",
    "g1_rows",
    "g2_rows",
    "write_csv",
    "write_json",
]
