"""Table 2 — DYN-HCL vs full recomputation (goal G1).

For every dataset and landmark-set size, reports ``T_BUILD`` (full
``BUILDHCL`` on the final landmark set), ``T_FDYN`` (mean per-update time
of ``UPGRADE-LMK``/``DOWNGRADE-LMK`` over the σ = |R|/4 mixed workload) and
their ratio ``SPEED-UP`` — the paper's headline measurement.

The paper's small sweep uses |R| ∈ {20, 40, 80} on all graphs and a large
sweep |R| ∈ {800, 1600, 3200} on road/communication graphs; at our ~1/1000
graph scale the large sweep maps to {100, 200, 400} (same landmark density).
"""

from __future__ import annotations

from typing import Sequence

from ..workloads.datasets import TABLE1_DATASETS, dataset_spec
from .harness import G1Result, run_g1
from .reporting import fmt_count, fmt_seconds, fmt_speedup, render_table

__all__ = ["run_table2", "SMALL_R", "LARGE_R", "LARGE_R_DATASETS"]

#: The paper's small landmark sweep (used verbatim).
SMALL_R: tuple[int, ...] = (20, 40, 80)

#: The paper's {800, 1600, 3200} sweep rescaled to our instance sizes.
LARGE_R: tuple[int, ...] = (100, 200, 400)

#: Road + communication datasets eligible for the large sweep (paper's set).
LARGE_R_DATASETS: tuple[str, ...] = ("LUX", "CAI", "UK-W", "NW", "NE", "ITA", "DEU", "USA")


def _sweep(
    names: Sequence[str], r_values: Sequence[int], scale: float, seed: int
) -> list[list[G1Result]]:
    table: list[list[G1Result]] = []
    for name in names:
        spec = dataset_spec(name)
        graph = spec.build(scale=scale, seed=seed)
        row = [
            run_g1(graph, name, r, seed=seed + 13 * r)
            for r in r_values
            # keep landmark density <= 50% so the σ/2 insertions of the
            # mixed workload always have candidates
            if 2 * r <= graph.n
        ]
        table.append(row)
    return table


def _render(
    title: str, r_values: Sequence[int], results: list[list[G1Result]]
) -> str:
    headers = ["Graph"]
    for r in r_values:
        headers += [
            f"T_BUILD@{r}",
            f"T_FDYN@{r}",
            f"WORK@{r}",
            f"SPEEDUP@{r}",
        ]
    rows = []
    for row in results:
        if not row:
            continue
        cells = [row[0].dataset]
        for res in row:
            cells += [
                fmt_seconds(res.t_build),
                fmt_seconds(res.t_fdyn),
                fmt_count(res.work_per_update),
                fmt_speedup(res.speedup),
            ]
        # Pad datasets that skipped infeasible |R| values.
        cells += ["-"] * (len(headers) - len(cells))
        rows.append(cells)
    return render_table(
        title,
        headers,
        rows,
        note=(
            "T_BUILD: BUILDHCL from scratch on the final landmark set (s). "
            "T_FDYN: mean per-update time of UPGRADE/DOWNGRADE-LMK (s). "
            "WORK: mean vertices processed per update (settled + swept + "
            "pruning tests) — the machine-independent companion of T_FDYN. "
            "SPEED-UP = T_BUILD / T_FDYN."
        ),
    )


def run_table2(
    scale: float = 1.0,
    seed: int = 0,
    datasets: Sequence[str] | None = None,
    include_large: bool = True,
    export_csv: str | None = None,
) -> str:
    """Run the full Table 2 sweep and render both halves.

    ``export_csv`` additionally writes every measurement as machine-readable
    rows (see :mod:`repro.experiments.export`).
    """
    small_names = list(datasets) if datasets else [s.name for s in TABLE1_DATASETS]
    small = _sweep(small_names, SMALL_R, scale, seed)
    parts = [
        _render("Table 2 (top) — |R| in {20, 40, 80}", SMALL_R, small)
    ]
    collected = [res for row in small for res in row]
    if include_large:
        large_names = [n for n in LARGE_R_DATASETS if n in small_names]
        if large_names:
            large = _sweep(large_names, LARGE_R, scale, seed)
            collected += [res for row in large for res in row]
            parts.append(
                _render(
                    "Table 2 (bottom) — |R| in {100, 200, 400} "
                    "(paper: {800, 1600, 3200}, rescaled)",
                    LARGE_R,
                    large,
                )
            )
    if export_csv and collected:
        from .export import G1_COLUMNS, g1_rows, write_csv

        write_csv(g1_rows(collected), export_csv, columns=G1_COLUMNS)
    return "\n\n".join(parts)
