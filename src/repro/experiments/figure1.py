"""Figure 1 — the worked landmark-reconfiguration example.

Replays the paper's running example on the reconstructed graph: the index
over ``R = {5, 7}``, the promotion of vertex 3 (``UPGRADE-LMK``), the
demotion of vertex 7 (``DOWNGRADE-LMK``), printing highway and labels at
every stage exactly as Figure 1 depicts them.
"""

from __future__ import annotations

import itertools

from ..core.build import build_hcl
from ..core.downgrade import downgrade_landmark
from ..core.index import HCLIndex
from ..core.upgrade import upgrade_landmark
from ..workloads.figure1_graph import FIGURE1_INITIAL_LANDMARKS, figure1_graph

__all__ = ["run_figure1"]


def _render_index(title: str, index: HCLIndex) -> list[str]:
    out = [title, "-" * len(title)]
    lmks = sorted(index.landmarks)
    out.append(f"  landmarks R = {set(lmks)}")
    for r1, r2 in itertools.combinations(lmks, 2):
        out.append(f"  δ_H({r1}, {r2}) = {index.highway.distance(r1, r2):g}")
    for v in range(1, index.graph.n):
        label = index.labeling.label(v)
        entries = ", ".join(
            f"({r}, {d:g})" for r, d in sorted(label.items())
        )
        out.append(f"  L({v:2d}) = {{{entries}}}")
    return out


def run_figure1() -> str:
    """Replay the Figure 1 scenario and render all three index states."""
    graph = figure1_graph()
    index = build_hcl(graph, FIGURE1_INITIAL_LANDMARKS)
    out = ["Figure 1 — landmark reconfiguration on the worked example", ""]
    out += _render_index("Initial index, R = {5, 7}", index)
    out.append("")

    stats = upgrade_landmark(index, 3)
    out += _render_index("After UPGRADE-LMK(3), R = {3, 5, 7}", index)
    out.append(
        f"  [settled {stats.settled} vertices, added {stats.entries_added} "
        f"entries, removed {stats.entries_removed} superfluous entries]"
    )
    out.append("")

    stats = downgrade_landmark(index, 7)
    out += _render_index("After DOWNGRADE-LMK(7), R = {3, 5}", index)
    out.append(
        f"  [swept {stats.swept} vertices, removed {stats.entries_removed} "
        f"entries, re-covered with {stats.entries_added} entries via "
        f"{stats.recover_searches} resumed searches]"
    )
    out.append("")
    out.append(
        "Note: matches the paper's narrative except the removal of the "
        "landmark-5 entry from L(10), which contradicts Algorithm 1's own "
        "keep-test in any graph consistent with the rest of the example "
        "(see EXPERIMENTS.md)."
    )
    return "\n".join(out)
