"""Structured export of experiment results (CSV / JSON).

The table runners print paper-shaped text; downstream analysis wants
machine-readable rows.  These helpers serialize the harness result
dataclasses with stable column orders, so a sweep can be re-plotted
without re-running it.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Sequence, TextIO

from .harness import G1Result, G2Result

__all__ = ["g1_rows", "g2_rows", "write_csv", "write_json"]

G1_COLUMNS = (
    "dataset",
    "landmarks",
    "sigma",
    "t_build",
    "t_fdyn",
    "speedup",
    "label_entries_dyn",
    "label_entries_rebuilt",
    # Machine-independent work counters (the paper's cost model):
    # affected-set sizes and pruning-test rejections over the σ updates.
    "settled",
    "swept",
    "pruned",
    "work_per_update",
)

G2_COLUMNS = (
    "dataset",
    "landmarks",
    "sigma",
    "queries",
    "cmt_fdyn",
    "cmt_chgsp",
    "amr_fdyn",
    "amr_chgsp",
    "settled",
    "swept",
    "pruned",
)


def g1_rows(results: Iterable[G1Result]) -> list[dict]:
    """Dict rows (column order of ``G1_COLUMNS``) for Table 2 results."""
    return [
        {
            "dataset": r.dataset,
            "landmarks": r.landmarks,
            "sigma": r.sigma,
            "t_build": r.t_build,
            "t_fdyn": r.t_fdyn,
            "speedup": r.speedup,
            "label_entries_dyn": r.label_entries_dyn,
            "label_entries_rebuilt": r.label_entries_rebuilt,
            "settled": r.settled,
            "swept": r.swept,
            "pruned": r.pruned,
            "work_per_update": r.work_per_update,
        }
        for r in results
    ]


def g2_rows(results: Iterable[G2Result]) -> list[dict]:
    """Dict rows (column order of ``G2_COLUMNS``) for Table 3 results."""
    return [
        {
            "dataset": r.dataset,
            "landmarks": r.landmarks,
            "sigma": r.sigma,
            "queries": r.queries,
            "cmt_fdyn": r.cmt_fdyn,
            "cmt_chgsp": r.cmt_chgsp,
            "amr_fdyn": r.amr_fdyn,
            "amr_chgsp": r.amr_chgsp,
            "settled": r.settled,
            "swept": r.swept,
            "pruned": r.pruned,
        }
        for r in results
    ]


def write_csv(
    rows: Sequence[dict], target: str | Path | TextIO, columns: Sequence[str] | None = None
) -> None:
    """Write dict rows as CSV (column order from ``columns`` or first row)."""
    if not rows:
        raise ValueError("no rows to export")
    columns = list(columns or rows[0].keys())
    if isinstance(target, (str, Path)):
        fh: TextIO = open(target, "w", newline="", encoding="utf-8")
        should_close = True
    else:
        fh = target
        should_close = False
    try:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)
    finally:
        if should_close:
            fh.close()


def write_json(rows: Sequence[dict], target: str | Path | TextIO) -> None:
    """Write dict rows as a JSON array."""
    if isinstance(target, (str, Path)):
        fh: TextIO = open(target, "w", encoding="utf-8")
        should_close = True
    else:
        fh = target
        should_close = False
    try:
        json.dump(list(rows), fh, indent=2)
    finally:
        if should_close:
            fh.close()
