"""Table 3 — cumulative/amortized DYN-HCL vs CH-GSP (goal G2).

For the sparse (road + internet) datasets — CH preprocessing degrades on
dense/social graphs, so the paper restricts this comparison to sparse
inputs — reports cumulative runtime (construction + landmark updates +
queries) and per-query amortized cost for both engines, at the rescaled
large landmark sweep.
"""

from __future__ import annotations

from typing import Sequence

from ..workloads.datasets import TABLE1_DATASETS, dataset_spec
from .harness import G2Result, run_g2
from .reporting import fmt_amortized, fmt_seconds, render_table
from .table2 import LARGE_R

__all__ = ["run_table3", "SPARSE_DATASETS"]

#: Sparse datasets, Table 3's row set (paper: LUX, CAI, NW, NE, ITA, DEU, USA).
SPARSE_DATASETS: tuple[str, ...] = tuple(
    s.name for s in TABLE1_DATASETS if s.sparse
)


def run_table3(
    scale: float = 1.0,
    seed: int = 0,
    queries: int = 2000,
    datasets: Sequence[str] | None = None,
    r_values: Sequence[int] = LARGE_R,
    export_csv: str | None = None,
) -> str:
    """Run the Table 3 comparison and render it."""
    names = [n for n in (datasets or SPARSE_DATASETS) if dataset_spec(n).sparse]
    collected: list[G2Result] = []
    headers = ["Graph"]
    for r in r_values:
        headers += [
            f"CMT_FDYN@{r}",
            f"CMT_CHGSP@{r}",
            f"AMR_FDYN@{r}",
            f"AMR_CHGSP@{r}",
        ]
    rows = []
    for name in names:
        spec = dataset_spec(name)
        graph = spec.build(scale=scale, seed=seed)
        cells = [name]
        for r in r_values:
            if 2 * r > graph.n:  # keep the mixed workload feasible
                cells += ["-"] * 4
                continue
            res: G2Result = run_g2(
                graph, name, r, queries=queries, seed=seed + 13 * r
            )
            collected.append(res)
            cells += [
                fmt_seconds(res.cmt_fdyn),
                fmt_seconds(res.cmt_chgsp),
                fmt_amortized(res.amr_fdyn),
                fmt_amortized(res.amr_chgsp),
            ]
        rows.append(cells)
    if export_csv and collected:
        from .export import G2_COLUMNS, g2_rows, write_csv

        write_csv(g2_rows(collected), export_csv, columns=G2_COLUMNS)
    return render_table(
        "Table 3 — cumulative (CMT, s) and amortized (AMR, s/query) runtimes, "
        f"q = {queries}",
        headers,
        rows,
        note=(
            "CMT: index/CH construction + landmark updates + all queries. "
            "AMR = CMT / q (updates charged to queries, as in the paper). "
            "|R| values are the paper's {800, 1600, 3200} rescaled to the "
            "stand-in sizes."
        ),
    )
