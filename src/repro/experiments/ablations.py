"""Ablation studies for the design choices DESIGN.md calls out.

* **cleanup** — the superfluous-entry removal phase of ``UPGRADE-LMK``
  (lines 27–34): time spent vs label entries saved.  Without it the index
  stays correct but loses minimality, inflating space and ``QUERY`` cost.
* **batch** — batch reconfiguration (future-work ii) vs naive sequential
  replay, across batch sizes.
* **selection** — landmark-selection policy (degree / betweenness /
  random): effect on index size, build time and update time.
"""

from __future__ import annotations

import time

from ..core.batch import apply_batch
from ..core.build import build_hcl
from ..core.dynhcl import DynamicHCL
from ..core.selection import select_landmarks
from ..core.upgrade import upgrade_landmark
from ..workloads.datasets import dataset_spec
from ..workloads.updates import (
    decremental_update_sequence,
    incremental_update_sequence,
    mixed_update_sequence,
)
from .reporting import fmt_seconds, render_table

__all__ = [
    "run_ablation_cleanup",
    "run_ablation_batch",
    "run_ablation_selection",
    "run_ablation_incdec",
]

_DEFAULT_DATASETS = ("NW", "U-BAR")


def run_ablation_cleanup(
    scale: float = 1.0, seed: int = 0, datasets=_DEFAULT_DATASETS, k: int = 40
) -> str:
    """Cost/benefit of the UPGRADE-LMK cleanup phase (A1)."""
    rows = []
    for name in datasets:
        graph = dataset_spec(name).build(scale=scale, seed=seed)
        initial = select_landmarks(graph, k, seed=seed)
        promote = [
            v
            for v in select_landmarks(graph, 2 * k, seed=seed)
            if v not in set(initial)
        ][: k // 2]

        for cleanup in (True, False):
            index = build_hcl(graph, initial)
            start = time.perf_counter()
            for v in promote:
                upgrade_landmark(index, v, remove_superfluous=cleanup)
            elapsed = time.perf_counter() - start
            rows.append(
                [
                    name,
                    "on" if cleanup else "off",
                    f"{len(promote)}",
                    fmt_seconds(elapsed / max(1, len(promote))),
                    f"{index.labeling.total_entries():,}",
                ]
            )
    return render_table(
        "Ablation A1 — UPGRADE-LMK superfluous-entry cleanup",
        ["Graph", "cleanup", "upgrades", "T/upd (s)", "label entries"],
        rows,
        note=(
            "cleanup=off keeps the cover property but drops minimality: the "
            "entry count shows the space the paper's lines 27-34 reclaim."
        ),
    )


def run_ablation_batch(
    scale: float = 1.0, seed: int = 0, datasets=_DEFAULT_DATASETS, k: int = 60
) -> str:
    """Batch reconfiguration vs sequential replay (A2, future-work ii)."""
    rows = []
    for name in datasets:
        graph = dataset_spec(name).build(scale=scale, seed=seed)
        initial = select_landmarks(graph, k, seed=seed)
        for batch_size in (4, k // 2, k):
            updates = mixed_update_sequence(
                graph.n, initial, sigma=batch_size, seed=seed + batch_size
            )
            adds = [u.vertex for u in updates if u.kind == "add"]
            removes = [u.vertex for u in updates if u.kind == "remove"]

            dyn = DynamicHCL.build(graph, initial)
            start = time.perf_counter()
            dyn.apply_sequence(updates)
            t_seq = time.perf_counter() - start

            index = build_hcl(graph, initial)
            start = time.perf_counter()
            result = apply_batch(index, adds=adds, removes=removes)
            t_batch = time.perf_counter() - start
            rows.append(
                [
                    name,
                    f"{batch_size}",
                    fmt_seconds(t_seq),
                    fmt_seconds(t_batch),
                    result.strategy,
                ]
            )
    return render_table(
        "Ablation A2 — batch vs sequential landmark reconfiguration",
        ["Graph", "σ", "sequential (s)", "batch (s)", "batch strategy"],
        rows,
        note=(
            "The batch processor cancels opposing updates, orders insertions "
            "first, and falls back to one BUILDHCL when σ approaches |R|."
        ),
    )


def run_ablation_incdec(
    scale: float = 1.0, seed: int = 0, datasets=_DEFAULT_DATASETS, k: int = 40
) -> str:
    """Mixed vs purely incremental vs purely decremental workloads.

    The paper reports (§4) that incremental-only and decremental-only
    sequences behave like the mixed case; this runner regenerates that
    check.
    """
    rows = []
    for name in datasets:
        graph = dataset_spec(name).build(scale=scale, seed=seed)
        initial = select_landmarks(graph, k, seed=seed)
        sigma = max(2, k // 4)
        workloads = {
            "mixed": mixed_update_sequence(graph.n, initial, sigma=sigma, seed=seed),
            "incremental": incremental_update_sequence(
                graph.n, initial, sigma, seed=seed
            ),
            "decremental": decremental_update_sequence(
                graph.n, initial, sigma, seed=seed
            ),
        }
        for kind, updates in workloads.items():
            dyn = DynamicHCL.build(graph, initial)
            log = dyn.apply_sequence(updates)
            rows.append([name, kind, f"{log.count}", fmt_seconds(log.mean_seconds)])
    return render_table(
        "Ablation A4 — workload direction (mixed vs incremental vs decremental)",
        ["Graph", "workload", "σ", "T_FDYN (s)"],
        rows,
        note=(
            "The paper omits the incremental/decremental tables because the "
            "trends match the mixed case; this regenerates that claim."
        ),
    )


def run_ablation_selection(
    scale: float = 1.0, seed: int = 0, datasets=_DEFAULT_DATASETS, k: int = 40
) -> str:
    """Landmark-selection policy effect (A3)."""
    rows = []
    for name in datasets:
        graph = dataset_spec(name).build(scale=scale, seed=seed)
        for policy in ("degree", "betweenness", "random"):
            landmarks = select_landmarks(graph, k, policy=policy, seed=seed)
            start = time.perf_counter()
            dyn = DynamicHCL.build(graph, landmarks)
            t_build = time.perf_counter() - start
            log = dyn.apply_sequence(
                mixed_update_sequence(graph.n, landmarks, seed=seed + 3)
            )
            rows.append(
                [
                    name,
                    policy,
                    fmt_seconds(t_build),
                    fmt_seconds(log.mean_seconds),
                    f"{dyn.index.labeling.total_entries():,}",
                ]
            )
    return render_table(
        "Ablation A3 — landmark selection policy",
        ["Graph", "policy", "T_BUILD (s)", "T_FDYN (s)", "label entries"],
        rows,
        note=(
            "The paper uses degree for unweighted and approximate betweenness "
            "for weighted graphs; random is the stress baseline."
        ),
    )
