"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments table1 [--scale S] [--seed N]
    python -m repro.experiments table2 [--scale S] [--datasets A,B] [--no-large]
    python -m repro.experiments table3 [--scale S] [--queries Q]
    python -m repro.experiments figure1
    python -m repro.experiments figure2 [--scale S] [--queries Q]
    python -m repro.experiments ablation-cleanup | ablation-batch | ablation-selection
    python -m repro.experiments all          # everything, in paper order

Each subcommand prints a plain-text table shaped like the paper's
corresponding table/figure; see EXPERIMENTS.md for a recorded run.
"""

from __future__ import annotations

import argparse
import sys
import time

from .ablations import (
    run_ablation_batch,
    run_ablation_cleanup,
    run_ablation_incdec,
    run_ablation_selection,
)
from .extensions import (
    run_extension_batch,
    run_extension_directed,
    run_extension_fullydynamic,
)
from .figure1 import run_figure1
from .figure2 import run_figure2
from .table1 import run_table1
from .table2 import run_table2
from .table3 import run_table3

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "target",
        choices=[
            "table1",
            "table2",
            "table3",
            "figure1",
            "figure2",
            "ablation-cleanup",
            "ablation-batch",
            "ablation-selection",
            "ablation-incdec",
            "extension-batch",
            "extension-directed",
            "extension-fullydynamic",
            "all",
        ],
    )
    parser.add_argument("--scale", type=float, default=1.0, help="dataset size multiplier")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument("--queries", type=int, default=2000, help="queries per configuration")
    parser.add_argument(
        "--datasets",
        type=str,
        default=None,
        help="comma-separated dataset filter (e.g. LUX,NW)",
    )
    parser.add_argument(
        "--export",
        type=str,
        default=None,
        help="table2/table3: also write measurements to this CSV path",
    )
    parser.add_argument(
        "--no-large",
        action="store_true",
        help="table2: skip the large landmark sweep",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run one experiment target and print its table(s)."""
    args = _build_parser().parse_args(argv)
    datasets = args.datasets.split(",") if args.datasets else None

    def emit(text: str) -> None:
        print(text)
        print()

    start = time.perf_counter()
    if args.target in ("table1", "all"):
        emit(run_table1(scale=args.scale, seed=args.seed))
    if args.target in ("figure1", "all"):
        emit(run_figure1())
    if args.target in ("table2", "all"):
        emit(
            run_table2(
                scale=args.scale,
                seed=args.seed,
                datasets=datasets,
                include_large=not args.no_large,
                export_csv=args.export,
            )
        )
    if args.target in ("table3", "all"):
        emit(
            run_table3(
                scale=args.scale,
                seed=args.seed,
                queries=args.queries,
                datasets=datasets,
                export_csv=args.export,
            )
        )
    if args.target in ("figure2", "all"):
        emit(
            run_figure2(
                scale=args.scale,
                seed=args.seed,
                queries=args.queries,
                datasets=datasets,
            )
        )
    if args.target in ("ablation-cleanup", "all"):
        emit(run_ablation_cleanup(scale=args.scale, seed=args.seed))
    if args.target in ("ablation-batch", "all"):
        emit(run_ablation_batch(scale=args.scale, seed=args.seed))
    if args.target in ("ablation-selection", "all"):
        emit(run_ablation_selection(scale=args.scale, seed=args.seed))
    if args.target in ("ablation-incdec", "all"):
        emit(run_ablation_incdec(scale=args.scale, seed=args.seed))
    if args.target in ("extension-batch", "all"):
        emit(run_extension_batch(scale=args.scale, seed=args.seed))
    if args.target in ("extension-directed", "all"):
        emit(run_extension_directed(scale=args.scale, seed=args.seed))
    if args.target in ("extension-fullydynamic", "all"):
        emit(run_extension_fullydynamic(scale=args.scale, seed=args.seed))
    print(f"[done in {time.perf_counter() - start:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
