"""Figure 2 — cumulative runtime vs graph size at the largest |R|.

The paper plots ``CMT_FDYN`` and ``CMT_CHGSP`` over a selection of road
graphs at |R| = 3200 and observes that both scale roughly linearly with
graph size while DYN-HCL keeps constants at least an order of magnitude
lower.  This runner regenerates the two series (printed as a table, one
row per graph in increasing size) at the rescaled |R|.
"""

from __future__ import annotations

from typing import Sequence

from ..workloads.datasets import dataset_spec
from .harness import run_g2
from .reporting import fmt_count, fmt_seconds, render_table

__all__ = ["run_figure2", "FIGURE2_DATASETS"]

#: Road-family series in increasing size (the figure's x axis).
FIGURE2_DATASETS: tuple[str, ...] = ("LUX", "NW", "NE", "ITA", "DEU", "USA")


def run_figure2(
    scale: float = 1.0,
    seed: int = 0,
    queries: int = 2000,
    landmark_count: int = 400,
    datasets: Sequence[str] | None = None,
) -> str:
    """Regenerate the Figure 2 series."""
    rows = []
    for name in datasets or FIGURE2_DATASETS:
        spec = dataset_spec(name)
        graph = spec.build(scale=scale, seed=seed)
        r = min(landmark_count, max(2, graph.n // 4))  # density <= 25%
        res = run_g2(graph, name, r, queries=queries, seed=seed + 17)
        ratio = res.cmt_chgsp / res.cmt_fdyn if res.cmt_fdyn else float("inf")
        rows.append(
            [
                name,
                f"{graph.n:,}",
                f"{graph.m:,}",
                fmt_seconds(res.cmt_fdyn),
                fmt_count(res.settled + res.swept + res.pruned),
                fmt_seconds(res.cmt_chgsp),
                f"{ratio:.1f}x",
            ]
        )
    return render_table(
        f"Figure 2 — cumulative runtimes at |R| = {landmark_count} "
        "(paper: 3200, rescaled)",
        [
            "Graph",
            "|V|",
            "|E|",
            "CMT_FDYN (s)",
            "DYN WORK",
            "CMT_CHGSP (s)",
            "CH-GSP/DYN",
        ],
        rows,
        note=(
            "Series in increasing graph size; the paper's claim to check is "
            "roughly linear growth of both series with DYN-HCL at least an "
            "order of magnitude below CH-GSP throughout.  DYN WORK is the "
            "maintenance phase's total vertex count (settled + swept + "
            "pruning tests): a machine-independent second witness of the "
            "same scaling claim."
        ),
    )
