"""Plain-text table rendering for the experiment harness.

The runners print tables with the same rows/columns as the paper's Tables
1–3 and the series of Figure 2, so a reproduction run can be compared to
the paper side by side.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "render_table",
    "fmt_count",
    "fmt_seconds",
    "fmt_speedup",
    "fmt_amortized",
]


def fmt_seconds(value: float, threshold: float = 0.01) -> str:
    """Seconds formatted like the paper's Table 2 (``<0.01`` floor)."""
    if value != value or value == math.inf:  # NaN / inf guards
        return "-"
    if 0 < value < threshold:
        return f"<{threshold:g}"
    return f"{value:.2f}"


def fmt_count(value: float) -> str:
    """Work counters (vertex counts) with a thousands separator."""
    if value != value or value == math.inf:
        return "-"
    return f"{value:,.0f}"


def fmt_speedup(value: float) -> str:
    """Speedup factors with two decimals (paper style)."""
    if value != value or value == math.inf:
        return "-"
    return f"{value:,.2f}"


def fmt_amortized(value: float) -> str:
    """Scientific notation with one decimal, as in the paper's Table 3."""
    if value != value or value == math.inf or value <= 0:
        return "-"
    exponent = math.floor(math.log10(value))
    mantissa = value / 10**exponent
    return f"{mantissa:.1f}e{exponent:+03d}"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    note: str | None = None,
) -> str:
    """Fixed-width table with a title rule and an optional footnote."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    sep = "-+-".join("-" * w for w in widths)

    def line(cells: Sequence[str]) -> str:
        return " | ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    out = [title, "=" * len(title), line(headers), sep]
    out.extend(line(row) for row in rows)
    if note:
        out.append("")
        out.append(note)
    return "\n".join(out)
