"""Evaluation of the future-work extensions (no paper counterpart).

The paper defers directed graphs and the fully dynamic setting to future
work; since this repository implements both, these runners give them the
same treatment Table 2 gives the undirected algorithms: per-update dynamic
cost against a from-scratch rebuild.

* ``extension-directed`` — directed DYN-HCL on randomly-oriented versions
  of the road and power-law stand-ins.
* ``extension-fullydynamic`` — interleaved landmark and edge updates
  against full rebuilds after every change.
* ``extension-batch`` — one merged :func:`repro.core.batch.apply_batch`
  over a mixed swap + edge-reweight batch against its sequential
  single-update replay, comparing both wall-clock and the paper's
  machine-independent work counters (settled + swept + pruned).
"""

from __future__ import annotations

import random
import time

from ..core.build import build_hcl
from ..core.dynhcl import DynamicHCL
from ..core.directed import (
    build_directed_hcl,
    downgrade_landmark_directed,
    upgrade_landmark_directed,
)
from ..core.selection import select_landmarks
from ..core.topology import FullyDynamicHCL
from ..graphs.digraph import DiGraph
from ..workloads.datasets import dataset_spec
from .reporting import fmt_seconds, fmt_speedup, render_table

__all__ = [
    "run_extension_batch",
    "run_extension_directed",
    "run_extension_fullydynamic",
]

_DEFAULT_DATASETS = ("NW", "U-BAR")


def _orient(graph, seed: int) -> DiGraph:
    """Random orientation + reverse arcs for a fraction of edges.

    Keeps the digraph strongly-connected-ish (every edge keeps at least
    one direction; 60% keep both), which mirrors how road networks digitize
    one-way streets.
    """
    rng = random.Random(seed)
    d = DiGraph(graph.n, unweighted=graph.unweighted)
    for u, v, w in graph.edges():
        if rng.random() < 0.6:
            d.add_arc(u, v, w)
            d.add_arc(v, u, w)
        elif rng.random() < 0.5:
            d.add_arc(u, v, w)
        else:
            d.add_arc(v, u, w)
    return d


def run_extension_directed(
    scale: float = 1.0, seed: int = 0, datasets=_DEFAULT_DATASETS, k: int = 40
) -> str:
    """Directed DYN-HCL vs directed rebuild (Table 2 treatment)."""
    rows = []
    for name in datasets:
        base = dataset_spec(name).build(scale=scale, seed=seed)
        digraph = _orient(base, seed + 1)
        landmarks = select_landmarks(base, k, seed=seed)
        index = build_directed_hcl(digraph, landmarks)

        rng = random.Random(seed + 2)
        current = set(landmarks)
        times = []
        for step in range(max(2, k // 4)):
            if step % 2 == 0 and current:
                v = rng.choice(sorted(current))
                start = time.perf_counter()
                downgrade_landmark_directed(index, v)
                times.append(time.perf_counter() - start)
                current.discard(v)
            else:
                v = rng.choice([x for x in range(digraph.n) if x not in current])
                start = time.perf_counter()
                upgrade_landmark_directed(index, v)
                times.append(time.perf_counter() - start)
                current.add(v)
        t_fdyn = sum(times) / len(times)

        start = time.perf_counter()
        build_directed_hcl(digraph, sorted(current))
        t_build = time.perf_counter() - start
        rows.append(
            [
                name,
                f"{digraph.n:,}",
                f"{digraph.m:,}",
                fmt_seconds(t_build),
                fmt_seconds(t_fdyn),
                fmt_speedup(t_build / t_fdyn if t_fdyn else float("inf")),
            ]
        )
    return render_table(
        f"Extension — directed DYN-HCL vs directed BUILDHCL (|R| = {k})",
        ["Graph", "|V|", "arcs", "T_BUILD", "T_FDYN", "SPEED-UP"],
        rows,
        note=(
            "Randomly-oriented stand-ins (60% two-way arcs). The paper "
            "defers digraphs to future work; this is our implementation's "
            "own evaluation."
        ),
    )


def run_extension_fullydynamic(
    scale: float = 1.0, seed: int = 0, datasets=_DEFAULT_DATASETS, k: int = 40
) -> str:
    """Fully dynamic setting: landmark + edge churn vs rebuild-per-change."""
    rows = []
    for name in datasets:
        graph = dataset_spec(name).build(scale=scale, seed=seed)
        landmarks = select_landmarks(graph, k, seed=seed)
        dyn = FullyDynamicHCL.build(graph.copy(), landmarks)
        rng = random.Random(seed + 3)
        current = set(landmarks)

        ops = 0
        affected_total = 0
        start = time.perf_counter()
        for step in range(20):
            roll = rng.random()
            if roll < 0.25 and len(current) < graph.n:
                v = rng.choice([x for x in range(graph.n) if x not in current])
                dyn.add_landmark(v)
                current.add(v)
            elif roll < 0.5 and current:
                v = rng.choice(sorted(current))
                dyn.remove_landmark(v)
                current.discard(v)
            elif roll < 0.75:
                for _ in range(50):
                    u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                    if u != v and not dyn.index.graph.has_edge(u, v):
                        stats = dyn.insert_edge(u, v, 1.0)
                        affected_total += stats.affected_landmarks
                        break
            else:
                edges = list(dyn.index.graph.edges())
                u, v, _ = rng.choice(edges)
                stats = dyn.delete_edge(u, v)
                affected_total += stats.affected_landmarks
            ops += 1
        t_dyn = (time.perf_counter() - start) / ops

        start = time.perf_counter()
        build_hcl(dyn.index.graph, sorted(current))
        t_build = time.perf_counter() - start
        rows.append(
            [
                name,
                f"{ops}",
                f"{affected_total}",
                fmt_seconds(t_build),
                fmt_seconds(t_dyn),
                fmt_speedup(t_build / t_dyn if t_dyn else float("inf")),
            ]
        )
    return render_table(
        f"Extension — fully dynamic (landmark + edge churn, |R| ≈ {k})",
        ["Graph", "ops", "affected rows", "T_BUILD", "T/op", "SPEED-UP"],
        rows,
        note=(
            "Mixed stream of landmark adds/removals and edge insertions/"
            "deletions; 'affected rows' counts per-landmark repairs the "
            "edge updates triggered. Rebuild cost is measured once on the "
            "final state."
        ),
    )


def run_extension_batch(
    scale: float = 1.0,
    seed: int = 0,
    datasets=_DEFAULT_DATASETS,
    k: int = 40,
    swaps: int = 4,
    edges: int = 8,
) -> str:
    """Merged ``apply_batch`` vs sequential replay of the same batch.

    Both sides apply an identical mixed batch — ``swaps`` promotions,
    ``swaps`` demotions and (on weighted graphs) ``edges`` edge
    reweights — from the same starting index; the merged side as one
    :meth:`~repro.core.dynhcl.DynamicHCL.apply_batch` call, the replay
    side one single-operation update at a time.  Besides wall-clock, the
    table reports the cost model's machine-independent work counters
    (settled + swept + pruned), aggregated through the
    :class:`~repro.core.dynhcl.UpdateLog` on both sides, so the
    merged-sweep saving is visible independent of machine speed.
    """
    rows = []
    for name in datasets:
        graph = dataset_spec(name).build(scale=scale, seed=seed)
        landmarks = select_landmarks(graph, k, seed=seed)
        rng = random.Random(seed + 4)
        pool = [x for x in range(graph.n) if x not in set(landmarks)]
        adds = sorted(rng.sample(pool, min(swaps, len(pool))))
        removes = sorted(
            rng.sample(sorted(landmarks), min(swaps, len(landmarks) - 1))
        )
        edge_ups = []
        if not graph.unweighted:
            sample = rng.sample(
                [e for _, e in zip(range(5000), graph.edges())], edges
            )
            edge_ups = [(u, v, w + 1.0) for u, v, w in sample]

        seq = FullyDynamicHCL.build(graph.copy(), landmarks)
        start = time.perf_counter()
        for v in adds:
            seq.add_landmark(v)
        for v in removes:
            seq.remove_landmark(v)
        for u, v, w in edge_ups:
            seq.set_edge_weight(u, v, w)
        t_seq = time.perf_counter() - start
        log = seq.log
        work_seq = log.settled + log.swept + log.pruned

        dyn = DynamicHCL.build(graph.copy(), landmarks)
        start = time.perf_counter()
        dyn.apply_batch(adds=adds, removes=removes, edge_updates=edge_ups)
        t_batch = time.perf_counter() - start
        log = dyn.log
        work_batch = log.settled + log.swept + log.pruned
        assert dyn.index.structurally_equal(seq.index)

        ops = len(adds) + len(removes) + len(edge_ups)
        rows.append(
            [
                name,
                f"{ops}",
                fmt_seconds(t_seq),
                fmt_seconds(t_batch),
                fmt_speedup(t_seq / t_batch if t_batch else float("inf")),
                f"{work_seq:,}",
                f"{work_batch:,}",
            ]
        )
    return render_table(
        f"Extension — batched vs sequential reconfiguration (|R| = {k})",
        ["Graph", "σ", "T_SEQ", "T_BATCH", "SPEED-UP", "work_seq", "work_batch"],
        rows,
        note=(
            "One merged apply_batch against the one-update-at-a-time "
            "replay of the same swap + reweight batch; 'work' is the "
            "machine-independent settled + swept + pruned total from the "
            "update log (sequential edge repairs predate the counters and "
            "count 0, so work_seq is a lower bound). Edge reweights are "
            "skipped on unweighted datasets."
        ),
    )
