"""Table 1 — dataset summary.

Prints, for every stand-in instance, the paper's columns (name, type,
|V|, |E|, average degree, weighted flag) next to the original dataset's
paper-reported size so the scaling is explicit.
"""

from __future__ import annotations

from ..workloads.datasets import TABLE1_DATASETS
from .reporting import render_table

__all__ = ["run_table1"]


def run_table1(scale: float = 1.0, seed: int = 0) -> str:
    """Build every stand-in and render the Table 1 reproduction."""
    rows = []
    for spec in TABLE1_DATASETS:
        g = spec.build(scale=scale, seed=seed)
        rows.append(
            [
                spec.name,
                spec.kind,
                f"{g.n:,}",
                f"{g.m:,}",
                f"{g.average_degree:.2f}",
                "w" if spec.weighted else "u",
                f"{spec.paper_vertices:,}",
                f"{spec.paper_edges:,}",
            ]
        )
    return render_table(
        f"Table 1 — datasets (stand-ins at scale {scale:g})",
        ["Graph", "Type", "|V|", "|E|", "avg deg", "W", "paper |V|", "paper |E|"],
        rows,
        note=(
            "W: w = weighted, u = unweighted (unit).  Stand-ins preserve the "
            "topology class, weightedness and degree profile of the paper's "
            "datasets at a pure-Python-sweepable size; see DESIGN.md §4."
        ),
    )
