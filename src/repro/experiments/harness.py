"""Shared experiment machinery: timed runs of DYN-HCL and CH-GSP.

Implements the paper's methodology steps (1)–(5):

1. build an initial HCL index over landmarks chosen by the standard policy;
2. (sparse graphs) preprocess CH-GSP and time its setup;
3. apply ``σ = |R|/4`` mixed landmark updates;
4. time each ``UPGRADE-LMK`` / ``DOWNGRADE-LMK`` invocation;
5. rebuild from scratch with ``BUILDHCL`` on the final landmark set, then
   issue ``q`` random landmark-constrained queries on both engines.

Results are returned as plain dataclasses the table runners format.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..baselines.ch.gsp import CHGSP
from ..core.batchquery import query_batch
from ..core.build import build_hcl, build_hcl_parallel
from ..core.dynhcl import DynamicHCL
from ..core.selection import select_landmarks
from ..graphs.graph import Graph
from ..obs import MetricsRegistry, Tracer
from ..workloads.queries import random_query_pairs, zipf_query_pairs
from ..workloads.updates import mixed_update_sequence

__all__ = [
    "G1Result",
    "G2Result",
    "ParallelResult",
    "run_g1",
    "run_g2",
    "run_parallel",
]


def _tracer() -> Tracer:
    """A run-local span tracer (does not touch the global ``repro.obs.OBS``,
    so the production kernels stay on their uninstrumented fast path)."""
    return Tracer(MetricsRegistry(), enabled=True)


@dataclass(frozen=True)
class G1Result:
    """One Table 2 cell group: dynamic maintenance vs full rebuild.

    The ``settled``/``swept``/``pruned`` work counters are the paper's
    cost model in machine-independent units: total ``UPGRADE-LMK``
    affected-set size, total ``DOWNGRADE-LMK`` sweep size, and total
    pruning-test rejections over the whole update sequence.  They were
    appended with defaults so pre-existing constructions stay valid.
    """

    dataset: str
    landmarks: int
    sigma: int
    t_build: float  # BUILDHCL from scratch on the final landmark set
    t_fdyn: float  # mean per-update time of UPGRADE/DOWNGRADE-LMK
    label_entries_dyn: int
    label_entries_rebuilt: int
    settled: int = 0
    swept: int = 0
    pruned: int = 0

    @property
    def speedup(self) -> float:
        """The paper's SPEED-UP column: ``T_BUILD / T_FDYN``."""
        return self.t_build / self.t_fdyn if self.t_fdyn > 0 else float("inf")

    @property
    def work_per_update(self) -> float:
        """Mean vertices processed per update — the machine-independent
        companion of ``t_fdyn`` (settled + swept + pruned, over σ)."""
        if self.sigma <= 0:
            return 0.0
        return (self.settled + self.swept + self.pruned) / self.sigma


@dataclass(frozen=True)
class G2Result:
    """One Table 3 cell group: cumulative/amortized DYN-HCL vs CH-GSP.

    ``cmt_fdyn`` / ``cmt_chgsp`` are *wall-clock* span durations of the
    whole engine phase, and each decomposes exactly into its parts::

        cmt_fdyn  == t_build + t_maintain + t_queries + t_overhead
        cmt_chgsp == t_chgsp_pre + t_chgsp_maintain + t_chgsp_queries
                     + t_chgsp_overhead

    where the ``*_overhead`` component is the phase span's self-time:
    everything between the child spans (iteration bookkeeping, cache
    warm-up, result collection) that earlier versions silently dropped
    from the reported totals.  The decomposition fields were appended
    with defaults, so pre-existing constructions remain valid.

    ``settled``/``swept``/``pruned`` are the maintenance phase's work
    counters (see :class:`G1Result`) — the machine-independent
    companions of ``t_maintain``.
    """

    dataset: str
    landmarks: int
    sigma: int
    queries: int
    cmt_fdyn: float
    cmt_chgsp: float
    t_build: float = 0.0
    t_maintain: float = 0.0
    t_queries: float = 0.0
    t_overhead: float = 0.0
    t_chgsp_pre: float = 0.0
    t_chgsp_maintain: float = 0.0
    t_chgsp_queries: float = 0.0
    t_chgsp_overhead: float = 0.0
    settled: int = 0
    swept: int = 0
    pruned: int = 0

    @property
    def amr_fdyn(self) -> float:
        """Amortized DYN-HCL cost per query."""
        return self.cmt_fdyn / self.queries

    @property
    def amr_chgsp(self) -> float:
        """Amortized CH-GSP cost per query."""
        return self.cmt_chgsp / self.queries


def run_g1(
    graph: Graph,
    dataset: str,
    landmark_count: int,
    seed: int = 0,
    policy: str = "auto",
) -> G1Result:
    """Goal (G1): maintenance efficiency of DYN-HCL vs BUILDHCL (Table 2)."""
    initial = select_landmarks(graph, landmark_count, policy=policy, seed=seed)
    dyn = DynamicHCL.build(graph, initial)
    updates = mixed_update_sequence(graph.n, initial, seed=seed + 1)
    log = dyn.apply_sequence(updates)

    final_landmarks = sorted(dyn.landmarks)
    tracer = _tracer()
    with tracer.span("g1.rebuild") as sp_build:
        rebuilt = build_hcl(graph, final_landmarks)
    t_build = sp_build.duration

    return G1Result(
        dataset=dataset,
        landmarks=landmark_count,
        sigma=log.count,
        t_build=t_build,
        t_fdyn=log.mean_seconds,
        label_entries_dyn=dyn.index.labeling.total_entries(),
        label_entries_rebuilt=rebuilt.labeling.total_entries(),
        settled=log.settled,
        swept=log.swept,
        pruned=log.pruned,
    )


@dataclass(frozen=True)
class ParallelResult:
    """Serial-vs-parallel build plus per-pair-vs-batch query timings."""

    dataset: str
    landmarks: int
    workers: int
    queries: int
    t_build_serial: float
    t_build_parallel: float
    t_query_serial: float  # per-pair ``index.query`` loop
    t_query_batch: float  # one ``query_batch`` call over the same pairs

    @property
    def build_speedup(self) -> float:
        """``T_BUILD / T_BUILD_PAR`` (< 1 on an oversubscribed machine)."""
        if self.t_build_parallel <= 0:
            return float("inf")
        return self.t_build_serial / self.t_build_parallel

    @property
    def batch_speedup(self) -> float:
        """Batch-serving throughput gain over the serial per-pair loop."""
        if self.t_query_batch <= 0:
            return float("inf")
        return self.t_query_serial / self.t_query_batch

    @property
    def batch_throughput(self) -> float:
        """Batched queries answered per second."""
        if self.t_query_batch <= 0:
            return float("inf")
        return self.queries / self.t_query_batch


def run_parallel(
    graph: Graph,
    dataset: str,
    landmark_count: int,
    workers: int = 4,
    queries: int = 2000,
    seed: int = 0,
    policy: str = "auto",
    zipf_alpha: float = 1.0,
) -> ParallelResult:
    """Measure the multi-core build and the batched query path.

    Builds the index serially and with :func:`build_hcl_parallel` (verifying
    the two agree structurally — the determinism guarantee the parallel
    merge makes), then serves a Zipf-skewed workload (real query logs are
    not uniform) both as a per-pair ``index.query`` loop and as one
    :func:`query_batch` call.
    """
    landmarks = select_landmarks(graph, landmark_count, policy=policy, seed=seed)
    tracer = _tracer()
    with tracer.span("parallel.build_serial") as sp_serial:
        index = build_hcl(graph, landmarks)
    with tracer.span("parallel.build_parallel") as sp_parallel:
        par_index = build_hcl_parallel(graph, landmarks, workers)
    if not index.structurally_equal(par_index):
        raise AssertionError("parallel build diverged from the serial index")

    pairs = zipf_query_pairs(graph.n, queries, alpha=zipf_alpha, seed=seed + 2)
    query = index.query
    with tracer.span("parallel.query_serial") as sp_qserial:
        serial_answers = [query(s, t) for s, t in pairs]
    # Never oversubscribe the machine for serving: on a box with fewer
    # cores than ``workers`` the shared-state serial batch path wins.
    with tracer.span("parallel.query_batch") as sp_qbatch:
        batch_answers = query_batch(
            index, pairs, min(workers, os.cpu_count() or 1)
        )
    if batch_answers != serial_answers:
        raise AssertionError("query_batch diverged from the per-pair loop")

    return ParallelResult(
        dataset=dataset,
        landmarks=landmark_count,
        workers=workers,
        queries=queries,
        t_build_serial=sp_serial.duration,
        t_build_parallel=sp_parallel.duration,
        t_query_serial=sp_qserial.duration,
        t_query_batch=sp_qbatch.duration,
    )


def run_g2(
    graph: Graph,
    dataset: str,
    landmark_count: int,
    queries: int = 2000,
    seed: int = 0,
    policy: str = "auto",
) -> G2Result:
    """Goal (G2): cumulative cost of DYN-HCL vs CH-GSP (Table 3 / Fig. 2).

    Cumulative DYN-HCL = initial BUILDHCL + all dynamic updates + all
    ``QUERY`` calls.  Cumulative CH-GSP = CH preprocessing + landmark-space
    setup/maintenance + all GSP queries.  Amortized = cumulative / queries,
    the classical charging scheme of the paper.

    Each engine phase runs inside one tracer span with build/maintain/query
    child spans, so the reported cumulative time is the phase's true
    wall-clock and the parts (plus the span's self-time, reported as
    overhead) sum to it exactly — earlier versions summed three inline
    ``perf_counter`` blocks and silently dropped whatever ran between
    them.
    """
    initial = select_landmarks(graph, landmark_count, policy=policy, seed=seed)
    updates = mixed_update_sequence(graph.n, initial, seed=seed + 1)
    pairs = random_query_pairs(graph.n, queries, seed=seed + 2)
    tracer = _tracer()

    # --- DYN-HCL side -------------------------------------------------
    with tracer.span("g2.dynhcl") as sp_dyn:
        with tracer.span("g2.dynhcl.build") as sp_build:
            dyn = DynamicHCL.build(graph, initial)
        with tracer.span("g2.dynhcl.maintain") as sp_maintain:
            log = dyn.apply_sequence(updates)
        query = dyn.index.query
        with tracer.span("g2.dynhcl.queries") as sp_queries:
            for s, t in pairs:
                query(s, t)

    # --- CH-GSP side --------------------------------------------------
    with tracer.span("g2.chgsp") as sp_gsp:
        with tracer.span("g2.chgsp.pre") as sp_pre:
            engine = CHGSP(graph, initial)
        with tracer.span("g2.chgsp.maintain") as sp_gsp_maintain:
            for update in updates:
                if update.kind == "add":
                    engine.add_landmark(update.vertex)
                else:
                    engine.remove_landmark(update.vertex)
        gsp_query = engine.landmark_constrained_distance
        with tracer.span("g2.chgsp.queries") as sp_gsp_queries:
            for s, t in pairs:
                gsp_query(s, t)

    return G2Result(
        dataset=dataset,
        landmarks=landmark_count,
        sigma=log.count,
        queries=queries,
        cmt_fdyn=sp_dyn.duration,
        cmt_chgsp=sp_gsp.duration,
        t_build=sp_build.duration,
        t_maintain=sp_maintain.duration,
        t_queries=sp_queries.duration,
        t_overhead=sp_dyn.self_seconds,
        t_chgsp_pre=sp_pre.duration,
        t_chgsp_maintain=sp_gsp_maintain.duration,
        t_chgsp_queries=sp_gsp_queries.duration,
        t_chgsp_overhead=sp_gsp.self_seconds,
        settled=log.settled,
        swept=log.swept,
        pruned=log.pruned,
    )
