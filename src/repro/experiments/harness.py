"""Shared experiment machinery: timed runs of DYN-HCL and CH-GSP.

Implements the paper's methodology steps (1)–(5):

1. build an initial HCL index over landmarks chosen by the standard policy;
2. (sparse graphs) preprocess CH-GSP and time its setup;
3. apply ``σ = |R|/4`` mixed landmark updates;
4. time each ``UPGRADE-LMK`` / ``DOWNGRADE-LMK`` invocation;
5. rebuild from scratch with ``BUILDHCL`` on the final landmark set, then
   issue ``q`` random landmark-constrained queries on both engines.

Results are returned as plain dataclasses the table runners format.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from ..baselines.ch.gsp import CHGSP
from ..core.batchquery import query_batch
from ..core.build import build_hcl, build_hcl_parallel
from ..core.dynhcl import DynamicHCL
from ..core.selection import select_landmarks
from ..graphs.graph import Graph
from ..workloads.queries import random_query_pairs, zipf_query_pairs
from ..workloads.updates import mixed_update_sequence

__all__ = [
    "G1Result",
    "G2Result",
    "ParallelResult",
    "run_g1",
    "run_g2",
    "run_parallel",
]


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


@dataclass(frozen=True)
class G1Result:
    """One Table 2 cell group: dynamic maintenance vs full rebuild."""

    dataset: str
    landmarks: int
    sigma: int
    t_build: float  # BUILDHCL from scratch on the final landmark set
    t_fdyn: float  # mean per-update time of UPGRADE/DOWNGRADE-LMK
    label_entries_dyn: int
    label_entries_rebuilt: int

    @property
    def speedup(self) -> float:
        """The paper's SPEED-UP column: ``T_BUILD / T_FDYN``."""
        return self.t_build / self.t_fdyn if self.t_fdyn > 0 else float("inf")


@dataclass(frozen=True)
class G2Result:
    """One Table 3 cell group: cumulative/amortized DYN-HCL vs CH-GSP."""

    dataset: str
    landmarks: int
    sigma: int
    queries: int
    cmt_fdyn: float
    cmt_chgsp: float

    @property
    def amr_fdyn(self) -> float:
        """Amortized DYN-HCL cost per query."""
        return self.cmt_fdyn / self.queries

    @property
    def amr_chgsp(self) -> float:
        """Amortized CH-GSP cost per query."""
        return self.cmt_chgsp / self.queries


def run_g1(
    graph: Graph,
    dataset: str,
    landmark_count: int,
    seed: int = 0,
    policy: str = "auto",
) -> G1Result:
    """Goal (G1): maintenance efficiency of DYN-HCL vs BUILDHCL (Table 2)."""
    initial = select_landmarks(graph, landmark_count, policy=policy, seed=seed)
    dyn = DynamicHCL.build(graph, initial)
    updates = mixed_update_sequence(graph.n, initial, seed=seed + 1)
    log = dyn.apply_sequence(updates)

    final_landmarks = sorted(dyn.landmarks)
    rebuilt, t_build = _timed(build_hcl, graph, final_landmarks)

    return G1Result(
        dataset=dataset,
        landmarks=landmark_count,
        sigma=log.count,
        t_build=t_build,
        t_fdyn=log.mean_seconds,
        label_entries_dyn=dyn.index.labeling.total_entries(),
        label_entries_rebuilt=rebuilt.labeling.total_entries(),
    )


@dataclass(frozen=True)
class ParallelResult:
    """Serial-vs-parallel build plus per-pair-vs-batch query timings."""

    dataset: str
    landmarks: int
    workers: int
    queries: int
    t_build_serial: float
    t_build_parallel: float
    t_query_serial: float  # per-pair ``index.query`` loop
    t_query_batch: float  # one ``query_batch`` call over the same pairs

    @property
    def build_speedup(self) -> float:
        """``T_BUILD / T_BUILD_PAR`` (< 1 on an oversubscribed machine)."""
        if self.t_build_parallel <= 0:
            return float("inf")
        return self.t_build_serial / self.t_build_parallel

    @property
    def batch_speedup(self) -> float:
        """Batch-serving throughput gain over the serial per-pair loop."""
        if self.t_query_batch <= 0:
            return float("inf")
        return self.t_query_serial / self.t_query_batch

    @property
    def batch_throughput(self) -> float:
        """Batched queries answered per second."""
        if self.t_query_batch <= 0:
            return float("inf")
        return self.queries / self.t_query_batch


def run_parallel(
    graph: Graph,
    dataset: str,
    landmark_count: int,
    workers: int = 4,
    queries: int = 2000,
    seed: int = 0,
    policy: str = "auto",
    zipf_alpha: float = 1.0,
) -> ParallelResult:
    """Measure the multi-core build and the batched query path.

    Builds the index serially and with :func:`build_hcl_parallel` (verifying
    the two agree structurally — the determinism guarantee the parallel
    merge makes), then serves a Zipf-skewed workload (real query logs are
    not uniform) both as a per-pair ``index.query`` loop and as one
    :func:`query_batch` call.
    """
    landmarks = select_landmarks(graph, landmark_count, policy=policy, seed=seed)
    index, t_serial = _timed(build_hcl, graph, landmarks)
    par_index, t_parallel = _timed(
        build_hcl_parallel, graph, landmarks, workers
    )
    if not index.structurally_equal(par_index):
        raise AssertionError("parallel build diverged from the serial index")

    pairs = zipf_query_pairs(graph.n, queries, alpha=zipf_alpha, seed=seed + 2)
    query = index.query
    start = time.perf_counter()
    serial_answers = [query(s, t) for s, t in pairs]
    t_query_serial = time.perf_counter() - start
    # Never oversubscribe the machine for serving: on a box with fewer
    # cores than ``workers`` the shared-state serial batch path wins.
    batch_answers, t_query_batch = _timed(
        query_batch, index, pairs, min(workers, os.cpu_count() or 1)
    )
    if batch_answers != serial_answers:
        raise AssertionError("query_batch diverged from the per-pair loop")

    return ParallelResult(
        dataset=dataset,
        landmarks=landmark_count,
        workers=workers,
        queries=queries,
        t_build_serial=t_serial,
        t_build_parallel=t_parallel,
        t_query_serial=t_query_serial,
        t_query_batch=t_query_batch,
    )


def run_g2(
    graph: Graph,
    dataset: str,
    landmark_count: int,
    queries: int = 2000,
    seed: int = 0,
    policy: str = "auto",
) -> G2Result:
    """Goal (G2): cumulative cost of DYN-HCL vs CH-GSP (Table 3 / Fig. 2).

    Cumulative DYN-HCL = initial BUILDHCL + all dynamic updates + all
    ``QUERY`` calls.  Cumulative CH-GSP = CH preprocessing + landmark-space
    setup/maintenance + all GSP queries.  Amortized = cumulative / queries,
    the classical charging scheme of the paper.
    """
    initial = select_landmarks(graph, landmark_count, policy=policy, seed=seed)
    updates = mixed_update_sequence(graph.n, initial, seed=seed + 1)
    pairs = random_query_pairs(graph.n, queries, seed=seed + 2)

    # --- DYN-HCL side -------------------------------------------------
    dyn, t_build = _timed(DynamicHCL.build, graph, initial)
    log = dyn.apply_sequence(updates)
    query = dyn.index.query
    start = time.perf_counter()
    for s, t in pairs:
        query(s, t)
    t_queries = time.perf_counter() - start
    cmt_fdyn = t_build + log.total_seconds + t_queries

    # --- CH-GSP side --------------------------------------------------
    engine, t_pre = _timed(CHGSP, graph, initial)
    start = time.perf_counter()
    for update in updates:
        if update.kind == "add":
            engine.add_landmark(update.vertex)
        else:
            engine.remove_landmark(update.vertex)
    t_maintain = time.perf_counter() - start
    gsp_query = engine.landmark_constrained_distance
    start = time.perf_counter()
    for s, t in pairs:
        gsp_query(s, t)
    t_gsp_queries = time.perf_counter() - start
    cmt_chgsp = t_pre + t_maintain + t_gsp_queries

    return G2Result(
        dataset=dataset,
        landmarks=landmark_count,
        sigma=log.count,
        queries=queries,
        cmt_fdyn=cmt_fdyn,
        cmt_chgsp=cmt_chgsp,
    )
