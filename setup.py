"""Legacy-compatible build entry point.

Metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on environments without the ``wheel`` package
(pip falls back to the classic ``setup.py develop`` editable path).
"""

from setuptools import setup

setup()
